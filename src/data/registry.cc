#include "data/registry.h"

#include <string_view>

#include "data/dirty.h"
#include "data/generators.h"
#include "util/logging.h"

namespace dial::data {

namespace {

/// Multiplies group counts by the scale factor (at least 8 groups).
size_t Scaled(size_t base, Scale scale) {
  double factor = 1.0;
  switch (scale) {
    case Scale::kSmoke:
      factor = 0.22;
      break;
    case Scale::kSmall:
      factor = 1.0;
      break;
    case Scale::kMedium:
      factor = 2.5;
      break;
  }
  const auto scaled = static_cast<size_t>(static_cast<double>(base) * factor);
  return std::max<size_t>(scaled, 8);
}

}  // namespace

Scale ParseScale(const std::string& text) {
  if (text == "smoke") return Scale::kSmoke;
  if (text == "small") return Scale::kSmall;
  if (text == "medium") return Scale::kMedium;
  DIAL_LOG_FATAL << "Unknown scale '" << text << "' (expected smoke|small|medium)";
  return Scale::kSmall;
}

std::string ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kSmall:
      return "small";
    case Scale::kMedium:
      return "medium";
  }
  return "?";
}

const std::vector<std::string>& BenchmarkDatasetNames() {
  static const auto* names = new std::vector<std::string>{
      "walmart_amazon", "amazon_google", "dblp_acm", "dblp_scholar", "abt_buy"};
  return *names;
}

const std::vector<std::string>& AllDatasetNames() {
  static const auto* names = new std::vector<std::string>{
      "walmart_amazon", "amazon_google", "dblp_acm",
      "dblp_scholar",   "abt_buy",       "multilingual"};
  return *names;
}

DatasetBundle MakeDataset(const std::string& name, Scale scale, uint64_t seed) {
  // "dirty_<base>": the DeepMatcher-style dirty variant of any structured
  // dataset (attribute values displaced into wrong columns; data/dirty.h).
  constexpr std::string_view kDirtyPrefix = "dirty_";
  if (name.rfind(kDirtyPrefix, 0) == 0) {
    DatasetBundle bundle =
        MakeDataset(name.substr(kDirtyPrefix.size()), scale, seed);
    bundle.name = name;
    DirtyConfig dirty;
    dirty.seed = seed * 104729 + 7;
    MakeDirty(bundle, dirty);
    return bundle;
  }
  if (name == "walmart_amazon") {
    // Shape: |R| << |S|, sparse dups, moderate product dirtiness.
    ProductsConfig config;
    config.families = Scaled(320, scale);
    config.p_matched = 0.16;
    config.p_r_only = 0.10;
    config.p_s_only = 0.70;
    config.extra_s_listing_prob = 0.10;
    config.seed = seed * 7919 + 11;
    return GenerateProducts(name, config);
  }
  if (name == "amazon_google") {
    // Shape: dups ≈ |R|, S ~2.3x R, noisier software/product strings.
    ProductsConfig config;
    config.families = Scaled(200, scale);
    config.p_matched = 0.42;
    config.p_r_only = 0.05;
    config.p_s_only = 0.45;
    config.extra_s_listing_prob = 0.08;
    config.noise.typo_prob = 0.12;
    config.noise.drop_prob = 0.12;
    config.seed = seed * 7919 + 22;
    return GenerateProducts(name, config);
  }
  if (name == "dblp_acm") {
    // Shape: near-1:1 lists, very clean, nearly all matched (F1 ~99 regime).
    CitationsConfig config;
    config.topics = Scaled(110, scale);
    config.p_matched = 0.80;
    config.p_r_only = 0.08;
    config.p_s_only = 0.10;
    config.extra_s_listing_prob = 0.03;
    config.noise.typo_prob = 0.02;
    config.noise.drop_prob = 0.02;
    config.noise.swap_prob = 0.02;
    config.venue_abbrev_prob = 0.5;
    config.author_initials_prob = 0.25;
    config.year_off_by_one_prob = 0.01;
    config.seed = seed * 7919 + 33;
    return GenerateCitations(name, config);
  }
  if (name == "dblp_scholar") {
    // Shape: |S| >> |R|, dirty Scholar entries, many-to-many duplicates.
    CitationsConfig config;
    config.topics = Scaled(260, scale);
    config.p_matched = 0.25;
    config.p_r_only = 0.10;
    config.p_s_only = 0.60;
    config.extra_s_listing_prob = 0.45;
    config.noise.typo_prob = 0.10;
    config.noise.drop_prob = 0.12;
    config.noise.swap_prob = 0.08;
    config.venue_abbrev_prob = 0.7;
    config.author_initials_prob = 0.55;
    config.year_off_by_one_prob = 0.08;
    config.seed = seed * 7919 + 44;
    return GenerateCitations(name, config);
  }
  if (name == "abt_buy") {
    // Shape: ~1:1 textual lists, dups ≈ |R|, long descriptions, model
    // numbers often missing on one side.
    ProductsConfig config;
    config.families = Scaled(110, scale);
    config.p_matched = 0.62;
    config.p_r_only = 0.05;
    config.p_s_only = 0.28;
    config.extra_s_listing_prob = 0.05;
    config.textual = true;
    config.synonym_prob = 0.3;
    config.noise.typo_prob = 0.10;
    config.noise.drop_prob = 0.15;
    config.noise.swap_prob = 0.10;
    config.seed = seed * 7919 + 55;
    return GenerateProducts(name, config);
  }
  if (name == "multilingual") {
    MultilingualConfig config;
    config.num_elements = Scaled(400, scale);
    config.seed = seed * 7919 + 66;
    return GenerateMultilingual(name, config);
  }
  DIAL_LOG_FATAL << "Unknown dataset '" << name << "'";
  return DatasetBundle{};
}

DatasetStats ComputeStats(const DatasetBundle& bundle) {
  DatasetStats stats;
  stats.name = bundle.name;
  stats.r_size = bundle.r_table.size();
  stats.s_size = bundle.s_table.size();
  stats.num_dups = bundle.dups.size();
  stats.dup_rate = bundle.DupRate();
  stats.test_size = bundle.test_pairs.size();
  return stats;
}

}  // namespace dial::data
