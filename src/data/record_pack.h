#ifndef DIAL_DATA_RECORD_PACK_H_
#define DIAL_DATA_RECORD_PACK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/record.h"
#include "util/serialize.h"
#include "util/status.h"

/// \file
/// Out-of-core record storage: the binary "record pack" that lets datasets
/// on the 10^6–10^7 axis exist without materializing a `Table` in RAM.
///
/// Wire format (all little-endian, written via util::BinaryWriter):
///
///     u32 magic, u32 version                   (BinaryWriter header)
///     schema: u64 num_attrs, then that many (u64 len + bytes) strings
///     records: per record
///         i64 entity_id
///         per attribute: u64 len + bytes
///     zero padding to the next 8-byte boundary
///     offset table: u64 count + count raw u64 absolute record offsets
///     footer: u64 offset_table_pos, u64 num_records, u32 footer magic
///     v2+: u32 kCrcTrailerMagic, u32 CRC32C of everything before it
///
/// The offset table lives at the *end* so records stream to disk in one
/// pass; the fixed-size footer at EOF locates it. Any truncation destroys
/// the footer, so a cut-off pack fails `Open` with a Status instead of
/// parsing garbage. The padding keeps the offset table 8-byte aligned so
/// the mmap reader can point straight into the mapping without unaligned
/// u64 loads. Since v2 the whole file is additionally covered by a CRC32C
/// trailer, verified over the mapping before any structure is trusted —
/// an interior bit-flip (which truncation checks cannot see) fails Open
/// with kCorruption. v1 packs still open, unverified.

namespace dial::data {

inline constexpr uint32_t kRecordPackMagic = 0x5244504Bu;   // "KPDR" LE
inline constexpr uint32_t kRecordPackVersion = 2;
inline constexpr uint32_t kRecordPackMinVersion = 1;
inline constexpr uint32_t kRecordPackCrcFromVersion = 2;
inline constexpr uint32_t kRecordPackFooterMagic = 0x504Bu;

/// Streams records to a pack file in one pass. Bounded memory: the only
/// per-record state kept is one u64 offset.
class RecordPackWriter {
 public:
  RecordPackWriter(const std::string& path, std::vector<std::string> schema);

  RecordPackWriter(const RecordPackWriter&) = delete;
  RecordPackWriter& operator=(const RecordPackWriter&) = delete;

  /// Appends one record. `values` must match the schema arity.
  void Add(int64_t entity_id, const std::vector<std::string>& values);

  /// Pads, writes the offset table + footer, closes the file. Must be
  /// called exactly once; returns the first error encountered.
  util::Status Finish();

  size_t num_records() const { return offsets_.size(); }

 private:
  util::BinaryWriter writer_;
  std::vector<std::string> schema_;
  std::vector<uint64_t> offsets_;
  util::Status status_;
  bool finished_ = false;
};

/// One record viewed in place: `values` are string_views into the reader's
/// mapping/buffer and stay valid as long as the reader does.
struct PackedRecord {
  int64_t entity_id = -1;
  std::vector<std::string_view> values;
};

/// Zero-copy pack reader. `kMmap` maps the file and never copies record
/// bytes (the mapping survives closing — and even unlinking — the file);
/// `kInMemory` reads the whole file into one buffer, for filesystems where
/// mmap is unavailable. Both modes share the same span-parsing code, so
/// they are bit-identical by construction. All accessors are const and
/// thread-safe: ParallelFor chunks can read disjoint rows concurrently.
class RecordPackReader {
 public:
  enum class Mode { kMmap, kInMemory };

  RecordPackReader() = default;
  ~RecordPackReader();

  RecordPackReader(const RecordPackReader&) = delete;
  RecordPackReader& operator=(const RecordPackReader&) = delete;
  RecordPackReader(RecordPackReader&& other) noexcept;
  RecordPackReader& operator=(RecordPackReader&& other) noexcept;

  /// Maps/loads `path` and validates header, footer, and offset table.
  /// On error the reader stays empty and reusable.
  util::Status Open(const std::string& path, Mode mode = Mode::kMmap);

  size_t size() const { return num_records_; }
  bool empty() const { return num_records_ == 0; }
  const std::vector<std::string>& schema() const { return schema_; }

  /// Parses record `i` in place. Corrupted value lengths (past the offset
  /// table) are a checked error, not UB.
  PackedRecord Get(size_t i) const;

  /// Ground-truth entity id of record `i` (cheap: no value parsing).
  int64_t EntityId(size_t i) const;

  /// Whole-record text, attribute values joined by spaces — the same
  /// serialization as Table::TextOf, so packed and in-RAM corpora tokenize
  /// identically.
  std::string TextOf(size_t i) const;

 private:
  const char* RecordStart(size_t i) const;
  void Close();

  const char* base_ = nullptr;       // mapping or buffer start
  uint64_t file_size_ = 0;
  bool mmapped_ = false;
  std::vector<char> buffer_;         // kInMemory backing store
  const uint64_t* offsets_ = nullptr;  // into base_, aligned
  uint64_t offset_table_pos_ = 0;    // record bytes end here
  uint64_t num_records_ = 0;
  std::vector<std::string> schema_;
};

/// Streams a whole Table into a pack (the `dial_cli datasets --pack`
/// converter path).
util::Status WriteTablePack(const std::string& path, const Table& table);

/// Streams `num_records` synthetic product-style records straight to disk
/// without materializing them: O(1) memory at any record count. Records
/// come in entity pairs (records 2e and 2e+1 share entity id e) with the
/// second rendering token-noised, so packs have duplicate structure for
/// blocking experiments. Deterministic in `seed`.
util::Status WriteSyntheticPack(const std::string& path, size_t num_records,
                                uint64_t seed);

}  // namespace dial::data

#endif  // DIAL_DATA_RECORD_PACK_H_
