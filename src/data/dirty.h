#ifndef DIAL_DATA_DIRTY_H_
#define DIAL_DATA_DIRTY_H_

#include "data/dataset.h"
#include "util/rng.h"

/// \file
/// "Dirty" dataset variants in the DeepMatcher sense: attribute values are
/// moved into the wrong column, so schema-aligned similarity features break
/// while the record's full text is preserved. The paper leans on exactly
/// this property of TPLMs — "they have been shown to lead to ... state of
/// the art performance on 'dirty' datasets" (Sec. 2.2) — and DIAL's
/// schema-agnostic serialization is what makes it robust here. The transform
/// keeps record ids and the gold duplicate set intact.

namespace dial::data {

struct DirtyConfig {
  /// Per-attribute probability of being displaced into another column.
  double move_prob = 0.3;
  /// Also dirty list R (default: only S, like the common dirty variants).
  bool dirty_r = false;
  /// The primary attribute (column 0) is exempt unless set.
  bool allow_primary = false;
  uint64_t seed = 77;
};

/// In-place dirtying: for each selected attribute value, appends it to a
/// different random column and blanks the source. No-op for single-column
/// schemas. The bundle still passes Validate().
void MakeDirty(DatasetBundle& bundle, const DirtyConfig& config);

/// Fraction of records in `table` whose values differ from a clean rendering
/// — diagnostic used by tests ("how dirty did we make it").
double DirtiedFraction(const Table& table, const Table& original);

}  // namespace dial::data

#endif  // DIAL_DATA_DIRTY_H_
