#include "data/record.h"

namespace dial::data {

const std::string& Table::Value(size_t row, const std::string& attribute) const {
  static const std::string kEmpty;
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == attribute) return records_[row].values[i];
  }
  return kEmpty;
}

std::string Table::TextOf(size_t row) const {
  const Record& r = records_[row];
  std::string out;
  for (const std::string& v : r.values) {
    if (v.empty()) continue;
    if (!out.empty()) out.push_back(' ');
    out += v;
  }
  return out;
}

std::vector<std::string> Table::AllTexts() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) out.push_back(TextOf(i));
  return out;
}

}  // namespace dial::data
