#include "data/dataset.h"

#include <algorithm>

namespace dial::data {

std::vector<std::string> DatasetBundle::CorpusLines() const {
  std::vector<std::string> lines = r_table.AllTexts();
  const auto s_lines = s_table.AllTexts();
  lines.insert(lines.end(), s_lines.begin(), s_lines.end());
  return lines;
}

double DatasetBundle::DupRate() const {
  const double total =
      static_cast<double>(r_table.size()) * static_cast<double>(s_table.size());
  return total == 0.0 ? 0.0 : static_cast<double>(dups.size()) / total;
}

void DatasetBundle::Validate() const {
  DIAL_CHECK_EQ(dups.size(), dup_keys.size()) << name << ": duplicate dup entries";
  for (const PairId& p : dups) {
    DIAL_CHECK_LT(p.r, r_table.size());
    DIAL_CHECK_LT(p.s, s_table.size());
  }
  for (const LabeledPair& lp : test_pairs) {
    DIAL_CHECK_LT(lp.pair.r, r_table.size());
    DIAL_CHECK_LT(lp.pair.s, s_table.size());
    DIAL_CHECK_EQ(lp.is_duplicate, IsDuplicate(lp.pair));
  }
  for (const PairId& p : seed_pos_pool) DIAL_CHECK(IsDuplicate(p));
  for (const PairId& p : seed_neg_pool) DIAL_CHECK(!IsDuplicate(p));
  // Seed pools must be disjoint from the test split.
  for (const PairId& p : seed_pos_pool) DIAL_CHECK(!InTest(p));
  for (const PairId& p : seed_neg_pool) DIAL_CHECK(!InTest(p));
}

void LabeledSet::AddPositive(PairId p, bool pseudo) {
  if (!keys_.insert(p.Key()).second) return;
  positives_.push_back({p, pseudo});
}

void LabeledSet::AddNegative(PairId p, bool pseudo) {
  if (!keys_.insert(p.Key()).second) return;
  negatives_.push_back({p, pseudo});
}

std::vector<LabeledPair> LabeledSet::AllPairs() const {
  std::vector<LabeledPair> out;
  out.reserve(size());
  for (const Entry& e : positives_) out.push_back({e.pair, true});
  for (const Entry& e : negatives_) out.push_back({e.pair, false});
  return out;
}

LabeledSet SampleSeedSet(const DatasetBundle& bundle, size_t per_class,
                         util::Rng& rng) {
  LabeledSet seed;
  DIAL_CHECK(!bundle.seed_pos_pool.empty()) << bundle.name << ": empty seed pool";
  DIAL_CHECK(!bundle.seed_neg_pool.empty()) << bundle.name << ": empty seed pool";
  const size_t npos = std::min(per_class, bundle.seed_pos_pool.size());
  const size_t nneg = std::min(per_class, bundle.seed_neg_pool.size());
  for (const size_t i : rng.SampleWithoutReplacement(bundle.seed_pos_pool.size(), npos)) {
    seed.AddPositive(bundle.seed_pos_pool[i]);
  }
  for (const size_t i : rng.SampleWithoutReplacement(bundle.seed_neg_pool.size(), nneg)) {
    seed.AddNegative(bundle.seed_neg_pool[i]);
  }
  return seed;
}

void BuildEvalSplit(DatasetBundle& bundle, std::vector<PairId> hard_negatives,
                    double test_fraction, util::Rng& rng) {
  // Drop any accidental duplicates-of-dups or repeated pairs.
  std::unordered_set<uint64_t> seen;
  std::vector<PairId> negatives;
  negatives.reserve(hard_negatives.size());
  for (const PairId& p : hard_negatives) {
    if (bundle.IsDuplicate(p)) continue;
    if (!seen.insert(p.Key()).second) continue;
    negatives.push_back(p);
  }

  // Split dups: test positives vs seed-pool positives.
  std::vector<size_t> dup_order(bundle.dups.size());
  for (size_t i = 0; i < dup_order.size(); ++i) dup_order[i] = i;
  rng.Shuffle(dup_order);
  size_t n_test_pos = static_cast<size_t>(
      static_cast<double>(bundle.dups.size()) * test_fraction);
  n_test_pos = std::max<size_t>(n_test_pos, std::min<size_t>(10, bundle.dups.size() / 2));
  for (size_t i = 0; i < dup_order.size(); ++i) {
    const PairId p = bundle.dups[dup_order[i]];
    if (i < n_test_pos) {
      bundle.test_pairs.push_back({p, true});
      bundle.test_keys.insert(p.Key());
    } else {
      bundle.seed_pos_pool.push_back(p);
    }
  }

  // Split negatives: 2 negatives per test positive go to Dtest, rest to the
  // seed pool.
  std::vector<size_t> neg_order(negatives.size());
  for (size_t i = 0; i < neg_order.size(); ++i) neg_order[i] = i;
  rng.Shuffle(neg_order);
  const size_t n_test_neg = std::min(negatives.size(), 2 * n_test_pos);
  for (size_t i = 0; i < neg_order.size(); ++i) {
    const PairId p = negatives[neg_order[i]];
    if (i < n_test_neg) {
      bundle.test_pairs.push_back({p, false});
      bundle.test_keys.insert(p.Key());
    } else {
      bundle.seed_neg_pool.push_back(p);
    }
  }
  DIAL_CHECK(!bundle.seed_neg_pool.empty())
      << bundle.name << ": not enough hard negatives generated";
}

}  // namespace dial::data
