#ifndef DIAL_DATA_WORD_FACTORY_H_
#define DIAL_DATA_WORD_FACTORY_H_

#include <string>
#include <vector>

#include "util/rng.h"

/// \file
/// Deterministic synthetic vocabulary for the dataset generators: fixed
/// English word pools (product nouns, adjectives, academic terms, venues)
/// plus seeded generators for brands, model codes, and person names. Using
/// real English words keeps subword statistics natural, which matters for
/// the MLM-pretrained TPLM substitute.

namespace dial::data {

class WordFactory {
 public:
  explicit WordFactory(uint64_t seed) : rng_(seed) {}

  /// Pronounceable made-up word of `syllables` syllables ("veltoro").
  std::string MakeWord(size_t syllables);
  /// Brand-like word ("zenvia", "kortek").
  std::string MakeBrand();
  /// Alphanumeric model code ("sx-4821", "dw390b").
  std::string MakeModelCode();
  /// "firstname lastname".
  std::string MakePersonName();
  /// Price string like "149.99", log-uniform in [lo, hi].
  std::string MakePrice(double lo, double hi);
  /// Year in [lo, hi].
  std::string MakeYear(int lo, int hi);

  /// Uniformly picks one element.
  const std::string& Pick(const std::vector<std::string>& pool);
  /// Picks k distinct elements (k <= pool size).
  std::vector<std::string> PickDistinct(const std::vector<std::string>& pool, size_t k);

  util::Rng& rng() { return rng_; }

  // Fixed pools (process-lifetime constants).
  static const std::vector<std::string>& ProductNouns();
  static const std::vector<std::string>& Adjectives();
  static const std::vector<std::string>& Colors();
  static const std::vector<std::string>& MarketingWords();
  static const std::vector<std::string>& AcademicWords();
  static const std::vector<std::string>& Venues();
  static const std::vector<std::string>& VenueAbbreviations();
  static const std::vector<std::string>& FirstNames();
  static const std::vector<std::string>& LastNames();
  static const std::vector<std::string>& CommonWords();

  /// Synonym used by the heterogeneous list S ("wireless" -> "cordless",
  /// "monitor" -> "display"). Returns `word` itself when no synonym exists.
  /// Several synonyms share subwords with their base form, mirroring how
  /// real product language varies — whole-token overlap breaks while
  /// subword/semantic evidence survives.
  static std::string Synonym(const std::string& word);

 private:
  util::Rng rng_;
};

}  // namespace dial::data

#endif  // DIAL_DATA_WORD_FACTORY_H_
