#ifndef DIAL_DATA_DATASET_H_
#define DIAL_DATA_DATASET_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "data/record.h"
#include "util/hash.h"
#include "util/rng.h"

/// \file
/// A fully materialized ER benchmark instance: lists R and S, the gold
/// duplicate set, the DeepMatcher-style labeled test split, and the pools
/// the AL seed set is drawn from (Sec. 4.1/4.2 protocol).

namespace dial::data {

/// A pair (r, s) ∈ R × S, by record ids.
struct PairId {
  uint32_t r = 0;
  uint32_t s = 0;

  uint64_t Key() const { return util::PairKey(r, s); }
  bool operator==(const PairId& other) const { return r == other.r && s == other.s; }
};

struct LabeledPair {
  PairId pair;
  bool is_duplicate = false;
};

struct DatasetBundle {
  std::string name;
  Table r_table;
  Table s_table;

  /// Gold duplicates (dups ⊂ R × S, possibly many-to-many).
  std::vector<PairId> dups;
  std::unordered_set<uint64_t> dup_keys;

  /// Dtest: the fixed labeled evaluation pairs (positives + hard negatives),
  /// mirroring the DeepMatcher test splits the paper evaluates on.
  std::vector<LabeledPair> test_pairs;
  std::unordered_set<uint64_t> test_keys;

  /// Pools for sampling the initial labeled seed set T (pairs from the
  /// benchmark train split: remaining dups / remaining blocked non-dups).
  std::vector<PairId> seed_pos_pool;
  std::vector<PairId> seed_neg_pool;

  bool IsDuplicate(PairId p) const { return dup_keys.count(p.Key()) > 0; }
  bool InTest(PairId p) const { return test_keys.count(p.Key()) > 0; }

  /// Unlabeled corpus R ∪ S (vocab training + MLM pretraining).
  std::vector<std::string> CorpusLines() const;

  /// Duplicate density |dups| / |R×S|.
  double DupRate() const;

  /// Internal consistency checks; aborts on violation (used by tests and by
  /// every generator before returning).
  void Validate() const;
};

/// Simulated human labeler backed by the gold duplicate set. Tracks budget
/// consumption the way the paper counts labels.
class OracleLabeler {
 public:
  explicit OracleLabeler(const DatasetBundle* bundle) : bundle_(bundle) {}

  bool Label(PairId pair) {
    ++labels_used_;
    return bundle_->IsDuplicate(pair);
  }

  size_t labels_used() const { return labels_used_; }

  /// Restores the budget counter when resuming from a checkpoint.
  void SetLabelsUsed(size_t n) { labels_used_ = n; }

 private:
  const DatasetBundle* bundle_;
  size_t labels_used_ = 0;
};

/// The labeled set T, partitioned into duplicates T_p and non-duplicates
/// T_n. Supports the pseudo-labels added by Partition-4 (Sec. 2.3.3).
class LabeledSet {
 public:
  struct Entry {
    PairId pair;
    bool pseudo = false;  // added without consuming labeler budget
  };

  void AddPositive(PairId p, bool pseudo = false);
  void AddNegative(PairId p, bool pseudo = false);

  bool Contains(PairId p) const { return keys_.count(p.Key()) > 0; }

  const std::vector<Entry>& positives() const { return positives_; }
  const std::vector<Entry>& negatives() const { return negatives_; }
  size_t size() const { return positives_.size() + negatives_.size(); }

  /// Pairs + binary labels in insertion order (for matcher training).
  std::vector<LabeledPair> AllPairs() const;

 private:
  std::vector<Entry> positives_;
  std::vector<Entry> negatives_;
  std::unordered_set<uint64_t> keys_;
};

/// Draws the initial seed T: `per_class` positives and negatives from the
/// bundle's seed pools (Sec. 4.2: 64 + 64 at full scale).
LabeledSet SampleSeedSet(const DatasetBundle& bundle, size_t per_class,
                         util::Rng& rng);

/// Shared helper used by the generators: builds test split + seed pools.
/// `hard_negatives` are non-duplicate pairs that look similar (rule-blocked
/// near misses); a `test_fraction` slice of dups and 2x that many hard
/// negatives become Dtest, the remainder feed the seed pools.
void BuildEvalSplit(DatasetBundle& bundle, std::vector<PairId> hard_negatives,
                    double test_fraction, util::Rng& rng);

}  // namespace dial::data

#endif  // DIAL_DATA_DATASET_H_
