#include "data/generators.h"

#include <algorithm>

#include "data/word_factory.h"
#include "util/string_util.h"

namespace dial::data {

namespace {

enum class Placement { kMatched, kROnly, kSOnly, kDiscard };

Placement RollPlacement(double p_matched, double p_r_only, double p_s_only,
                        util::Rng& rng) {
  const double roll = rng.Uniform();
  if (roll < p_matched) return Placement::kMatched;
  if (roll < p_matched + p_r_only) return Placement::kROnly;
  if (roll < p_matched + p_r_only + p_s_only) return Placement::kSOnly;
  return Placement::kDiscard;
}

/// Collects, per family, the ids of R records and S records so we can later
/// form cross-entity hard negatives within the family.
struct FamilyMembers {
  std::vector<std::pair<int, int>> r_records;  // (record id, entity id)
  std::vector<std::pair<int, int>> s_records;
};

std::vector<PairId> CrossFamilyNegatives(const std::vector<FamilyMembers>& families) {
  std::vector<PairId> negatives;
  for (const FamilyMembers& fam : families) {
    for (const auto& [rid, r_ent] : fam.r_records) {
      for (const auto& [sid, s_ent] : fam.s_records) {
        if (r_ent == s_ent) continue;
        negatives.push_back({static_cast<uint32_t>(rid), static_cast<uint32_t>(sid)});
      }
    }
  }
  return negatives;
}

}  // namespace

DatasetBundle GenerateProducts(const std::string& name, const ProductsConfig& config) {
  WordFactory words(config.seed);
  util::Rng& rng = words.rng();

  DatasetBundle bundle;
  bundle.name = name;
  if (config.textual) {
    bundle.r_table = Table({"name", "description", "price"});
    bundle.s_table = Table({"name", "description", "price"});
  } else {
    bundle.r_table = Table({"title", "brand", "modelno", "price"});
    bundle.s_table = Table({"title", "brand", "modelno", "price"});
  }

  struct Entity {
    std::string brand;
    std::string noun;
    std::vector<std::string> adjectives;
    std::string model;
    std::string color;
    double price;
  };

  std::vector<FamilyMembers> families(config.families);
  int next_entity = 0;
  for (size_t f = 0; f < config.families; ++f) {
    const std::string brand = words.MakeBrand();
    const std::string noun = words.Pick(WordFactory::ProductNouns());
    const auto base_adjs = words.PickDistinct(WordFactory::Adjectives(), 2);
    const double base_price = std::strtod(words.MakePrice(8, 900).c_str(), nullptr);
    const size_t k = config.min_entities_per_family +
                     rng.UniformInt(config.max_entities_per_family -
                                    config.min_entities_per_family + 1);
    // Siblings share the family stem but differ in several surface tokens
    // (distinct colors and variant adjectives, distinct model codes) — like
    // real product variants. This keeps the matcher's job hard but solvable:
    // the evidence is a handful of token mismatches, not a single character.
    const auto family_colors =
        words.PickDistinct(WordFactory::Colors(), std::min(k, WordFactory::Colors().size()));
    const auto family_variants = words.PickDistinct(
        WordFactory::Adjectives(), std::min(k, WordFactory::Adjectives().size()));
    for (size_t e = 0; e < k; ++e) {
      Entity ent;
      ent.brand = brand;
      ent.noun = noun;
      ent.adjectives = base_adjs;
      ent.adjectives.push_back(family_variants[e % family_variants.size()]);
      ent.model = words.MakeModelCode();
      ent.color = family_colors[e % family_colors.size()];
      ent.price = base_price * (0.8 + 0.4 * rng.Uniform());
      const int entity_id = next_entity++;

      const Placement placement =
          RollPlacement(config.p_matched, config.p_r_only, config.p_s_only, rng);
      if (placement == Placement::kDiscard) continue;

      // Clean R rendering.
      auto render_r = [&]() {
        Record rec;
        rec.entity_id = entity_id;
        const std::string title = util::Join(ent.adjectives, " ") + " " + ent.noun +
                                  " " + ent.color;
        if (config.textual) {
          std::string description = title;
          for (int w = 0; w < 6; ++w) {
            description += " " + words.Pick(WordFactory::CommonWords());
          }
          description += " " + ent.model;
          rec.values = {ent.brand + " " + ent.noun, description,
                        util::StrFormat("%.2f", ent.price)};
        } else {
          rec.values = {title, ent.brand, ent.model,
                        util::StrFormat("%.2f", ent.price)};
        }
        return rec;
      };

      // Dirty, schema-heterogeneous S rendering: like the real benchmarks,
      // the second list reformats model numbers, merges structured fields
      // into the title, and leaves attributes empty — whole-token and
      // exact-match evidence degrades while subword evidence survives.
      auto render_s = [&]() {
        Record rec;
        rec.entity_id = entity_id;
        std::vector<std::string> tokens;
        for (const std::string& adj : ent.adjectives) {
          tokens.push_back(rng.Bernoulli(config.synonym_prob)
                               ? WordFactory::Synonym(adj)
                               : adj);
        }
        tokens.push_back(rng.Bernoulli(config.synonym_prob)
                             ? WordFactory::Synonym(ent.noun)
                             : ent.noun);
        tokens.push_back(ent.color);
        tokens.push_back(ent.brand);
        tokens = PerturbTokens(tokens, config.noise, rng);
        if (rng.Bernoulli(0.4)) {
          tokens.push_back(words.Pick(WordFactory::MarketingWords()));
        }
        // Model number: frequently reformatted (dash dropped / brand prefix)
        // and placed in the title instead of the modelno field.
        std::string model = ent.model;
        if (rng.Bernoulli(0.5)) {
          std::string no_dash;
          for (const char c : model) {
            if (c != '-') no_dash.push_back(c);
          }
          model = no_dash;
        }
        if (rng.Bernoulli(0.15)) model = ApplyTypo(model, rng);
        std::string model_attr;
        if (rng.Bernoulli(0.5)) {
          tokens.push_back(model);  // embedded in the title
        } else {
          model_attr = model;
        }
        std::string price =
            JitterNumber(util::StrFormat("%.2f", ent.price), config.price_jitter, rng);
        if (rng.Bernoulli(0.2)) price.clear();
        std::string brand_attr = ent.brand;
        if (rng.Bernoulli(0.3)) brand_attr.clear();
        if (config.textual) {
          std::string description = util::Join(tokens, " ");
          for (int w = 0; w < 5; ++w) {
            description += " " + words.Pick(WordFactory::CommonWords());
          }
          // Textual data often omits the model number (the hard case).
          if (rng.Bernoulli(0.6)) description += " " + model;
          rec.values = {ent.brand + " " + ent.noun, description, price};
        } else {
          rec.values = {util::Join(tokens, " "), brand_attr, model_attr, price};
        }
        return rec;
      };

      if (placement == Placement::kMatched || placement == Placement::kROnly) {
        const int rid = bundle.r_table.Add(render_r());
        families[f].r_records.push_back({rid, entity_id});
        if (placement == Placement::kMatched) {
          const int sid = bundle.s_table.Add(render_s());
          families[f].s_records.push_back({sid, entity_id});
          bundle.dups.push_back(
              {static_cast<uint32_t>(rid), static_cast<uint32_t>(sid)});
          if (rng.Bernoulli(config.extra_s_listing_prob)) {
            const int sid2 = bundle.s_table.Add(render_s());
            families[f].s_records.push_back({sid2, entity_id});
            bundle.dups.push_back(
                {static_cast<uint32_t>(rid), static_cast<uint32_t>(sid2)});
          }
        }
      } else {  // kSOnly
        const int sid = bundle.s_table.Add(render_s());
        families[f].s_records.push_back({sid, entity_id});
      }
    }
  }

  for (const PairId& p : bundle.dups) bundle.dup_keys.insert(p.Key());
  BuildEvalSplit(bundle, CrossFamilyNegatives(families), config.test_fraction, rng);
  bundle.Validate();
  return bundle;
}

DatasetBundle GenerateCitations(const std::string& name,
                                const CitationsConfig& config) {
  WordFactory words(config.seed);
  util::Rng& rng = words.rng();

  DatasetBundle bundle;
  bundle.name = name;
  bundle.r_table = Table({"title", "authors", "venue", "year"});
  bundle.s_table = Table({"title", "authors", "venue", "year"});

  std::vector<FamilyMembers> families(config.topics);
  int next_entity = 0;
  for (size_t t = 0; t < config.topics; ++t) {
    const auto stem = words.PickDistinct(WordFactory::AcademicWords(), 3);
    const size_t venue_idx = rng.UniformInt(WordFactory::Venues().size());
    const size_t k =
        config.min_papers_per_topic +
        rng.UniformInt(config.max_papers_per_topic - config.min_papers_per_topic + 1);
    for (size_t e = 0; e < k; ++e) {
      const int entity_id = next_entity++;
      // Paper identity.
      std::vector<std::string> title = stem;
      for (const auto& extra : words.PickDistinct(WordFactory::AcademicWords(), 3)) {
        title.push_back(extra);
      }
      rng.Shuffle(title);
      std::vector<std::string> authors;
      const size_t n_authors = 2 + rng.UniformInt(3);
      for (size_t a = 0; a < n_authors; ++a) authors.push_back(words.MakePersonName());
      const std::string year = words.MakeYear(1995, 2015);

      const Placement placement =
          RollPlacement(config.p_matched, config.p_r_only, config.p_s_only, rng);
      if (placement == Placement::kDiscard) continue;

      auto render_r = [&]() {
        Record rec;
        rec.entity_id = entity_id;
        rec.values = {util::Join(title, " "), util::Join(authors, " , "),
                      WordFactory::Venues()[venue_idx], year};
        return rec;
      };
      auto render_s = [&]() {
        Record rec;
        rec.entity_id = entity_id;
        std::vector<std::string> s_title = PerturbTokens(title, config.noise, rng);
        std::vector<std::string> s_authors;
        for (const std::string& a : authors) {
          if (rng.Bernoulli(config.author_initials_prob)) {
            const auto parts = util::Split(a);
            s_authors.push_back(std::string(1, parts[0][0]) + ". " + parts.back());
          } else {
            s_authors.push_back(a);
          }
        }
        const std::string venue = rng.Bernoulli(config.venue_abbrev_prob)
                                      ? WordFactory::VenueAbbreviations()[venue_idx]
                                      : WordFactory::Venues()[venue_idx];
        std::string s_year = year;
        if (rng.Bernoulli(config.year_off_by_one_prob)) {
          s_year = std::to_string(std::atoi(year.c_str()) + (rng.Bernoulli(0.5) ? 1 : -1));
        }
        rec.values = {util::Join(s_title, " "), util::Join(s_authors, " , "), venue,
                      s_year};
        return rec;
      };

      if (placement == Placement::kMatched || placement == Placement::kROnly) {
        const int rid = bundle.r_table.Add(render_r());
        families[t].r_records.push_back({rid, entity_id});
        if (placement == Placement::kMatched) {
          const int sid = bundle.s_table.Add(render_s());
          families[t].s_records.push_back({sid, entity_id});
          bundle.dups.push_back(
              {static_cast<uint32_t>(rid), static_cast<uint32_t>(sid)});
          if (rng.Bernoulli(config.extra_s_listing_prob)) {
            const int sid2 = bundle.s_table.Add(render_s());
            families[t].s_records.push_back({sid2, entity_id});
            bundle.dups.push_back(
                {static_cast<uint32_t>(rid), static_cast<uint32_t>(sid2)});
          }
        }
      } else {
        const int sid = bundle.s_table.Add(render_s());
        families[t].s_records.push_back({sid, entity_id});
      }
    }
  }

  for (const PairId& p : bundle.dups) bundle.dup_keys.insert(p.Key());
  BuildEvalSplit(bundle, CrossFamilyNegatives(families), config.test_fraction, rng);
  bundle.Validate();
  return bundle;
}

DatasetBundle GenerateMultilingual(const std::string& name,
                                   const MultilingualConfig& config) {
  WordFactory words(config.seed);
  util::Rng& rng = words.rng();

  DatasetBundle bundle;
  bundle.name = name;
  bundle.r_table = Table({"content"});
  bundle.s_table = Table({"content"});

  static const char* const kPatterns[] = {"p", "h1", "li", "td", "code"};
  std::vector<int> pattern_of(config.num_elements);

  for (size_t i = 0; i < config.num_elements; ++i) {
    const size_t pattern = rng.UniformInt(std::size(kPatterns));
    pattern_of[i] = static_cast<int>(pattern);
    const std::string tag = kPatterns[pattern];
    const size_t n_words =
        config.min_words + rng.UniformInt(config.max_words - config.min_words + 1);
    std::vector<std::string> tokens;
    for (size_t w = 0; w < n_words; ++w) {
      if (rng.Bernoulli(0.12)) {
        tokens.push_back(std::to_string(rng.UniformInt(2000)));
      } else if (rng.Bernoulli(0.3)) {
        tokens.push_back(words.Pick(WordFactory::AcademicWords()));
      } else {
        tokens.push_back(words.Pick(WordFactory::CommonWords()));
      }
    }
    // Optional inline emphasis around one word.
    if (tokens.size() > 3 && rng.Bernoulli(0.3)) {
      const size_t w = 1 + rng.UniformInt(tokens.size() - 2);
      tokens[w] = "<b> " + tokens[w] + " </b>";
    }
    const std::string english = "<" + tag + "> " + util::Join(tokens, " ") + " </" +
                                tag + ">";

    Record r_rec;
    r_rec.entity_id = static_cast<int>(i);
    r_rec.values = {english};
    const int rid = bundle.r_table.Add(r_rec);

    // German side: morph transform + occasional word drop.
    std::string german = GermanMorphSentence(english);
    if (config.drop_prob > 0) {
      auto g_tokens = util::Split(german);
      std::vector<std::string> kept;
      for (const auto& t : g_tokens) {
        if (t[0] != '<' && kept.size() + 1 < g_tokens.size() &&
            rng.Bernoulli(config.drop_prob)) {
          continue;
        }
        kept.push_back(t);
      }
      german = util::Join(kept, " ");
    }
    Record s_rec;
    s_rec.entity_id = static_cast<int>(i);
    s_rec.values = {german};
    const int sid = bundle.s_table.Add(s_rec);
    bundle.dups.push_back({static_cast<uint32_t>(rid), static_cast<uint32_t>(sid)});
  }

  for (const PairId& p : bundle.dups) bundle.dup_keys.insert(p.Key());

  // Hard negatives: same tag pattern, different element.
  std::vector<PairId> negatives;
  for (size_t i = 0; i < config.num_elements; ++i) {
    size_t found = 0;
    for (size_t tries = 0; tries < 50 && found < 3; ++tries) {
      const size_t j = rng.UniformInt(config.num_elements);
      if (j == i || pattern_of[j] != pattern_of[i]) continue;
      negatives.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
      ++found;
    }
  }
  BuildEvalSplit(bundle, std::move(negatives), config.test_fraction, rng);
  bundle.Validate();
  return bundle;
}

}  // namespace dial::data
