#ifndef DIAL_DATA_PERTURB_H_
#define DIAL_DATA_PERTURB_H_

#include <string>
#include <vector>

#include "util/rng.h"

/// \file
/// Dirtiness operators applied when rendering an entity into list S: typos,
/// abbreviations, token drops/swaps, numeric jitter — the noise families the
/// benchmark datasets exhibit and that TPLMs are robust to (Sec. 2.2). Plus
/// the deterministic "Deutsch" morphological transform that powers the
/// multilingual dataset substitute (DESIGN.md §2).

namespace dial::data {

/// One random character edit: swap / drop / duplicate / replace. Words of
/// length < 3 are returned unchanged.
std::string ApplyTypo(const std::string& word, util::Rng& rng);

/// Prefix abbreviation: "electronics" -> "electr."; no-op for short words.
std::string Abbreviate(const std::string& word, util::Rng& rng);

struct TokenNoise {
  double typo_prob = 0.08;
  double abbrev_prob = 0.05;
  double drop_prob = 0.08;
  double swap_prob = 0.05;  // probability of swapping a token with its successor
};

/// Applies TokenNoise to each token; may drop tokens (never all of them).
std::vector<std::string> PerturbTokens(const std::vector<std::string>& tokens,
                                       const TokenNoise& noise, util::Rng& rng);

/// Multiplies a numeric string by (1 ± rel_noise); keeps 2 decimals.
std::string JitterNumber(const std::string& value, double rel_noise, util::Rng& rng);

/// Deterministic pseudo-German morphological transform. Preserves enough
/// character n-gram overlap for a shared-subword MLM model to align the two
/// languages, while destroying whole-token equality (so token-overlap rules
/// are useless — the paper's motivation for the multilingual experiment):
///   "printer" -> "geprinteren"-style affix + consonant shifts.
std::string GermanMorph(const std::string& word);

/// Applies GermanMorph to every alphabetic token of a sentence, leaving
/// XML/HTML tags, punctuation and numbers untouched.
std::string GermanMorphSentence(const std::string& sentence);

}  // namespace dial::data

#endif  // DIAL_DATA_PERTURB_H_
