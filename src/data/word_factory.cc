#include "data/word_factory.h"

#include <cmath>
#include <unordered_map>
#include "util/string_util.h"

namespace dial::data {

namespace {

const char* const kSyllables[] = {
    "ka", "ro", "ti", "mon", "lex", "ar", "ven", "zu", "pel", "dor",
    "mi", "sa", "tor", "bel", "qui", "nor", "fa", "lu", "gan", "rex",
    "vi", "sol", "tek", "mar", "den", "pho", "ri", "cas", "wol", "zen",
};

std::vector<std::string>* NewPool(std::initializer_list<const char*> words) {
  auto* pool = new std::vector<std::string>();
  for (const char* w : words) pool->push_back(w);
  return pool;
}

}  // namespace

std::string WordFactory::MakeWord(size_t syllables) {
  std::string out;
  for (size_t i = 0; i < syllables; ++i) {
    out += kSyllables[rng_.UniformInt(std::size(kSyllables))];
  }
  return out;
}

std::string WordFactory::MakeBrand() { return MakeWord(2 + rng_.UniformInt(2)); }

std::string WordFactory::MakeModelCode() {
  static const char* kLetters = "abcdefghjkmnprstuvwxz";
  std::string out;
  const size_t letters = 1 + rng_.UniformInt(2);
  for (size_t i = 0; i < letters; ++i) {
    out.push_back(kLetters[rng_.UniformInt(21)]);
  }
  if (rng_.Bernoulli(0.5)) out.push_back('-');
  const size_t digits = 3 + rng_.UniformInt(2);
  for (size_t i = 0; i < digits; ++i) {
    out.push_back(static_cast<char>('0' + rng_.UniformInt(10)));
  }
  if (rng_.Bernoulli(0.3)) out.push_back(kLetters[rng_.UniformInt(21)]);
  return out;
}

std::string WordFactory::MakePersonName() {
  return Pick(FirstNames()) + " " + Pick(LastNames());
}

std::string WordFactory::MakePrice(double lo, double hi) {
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  const double value = std::exp(log_lo + rng_.Uniform() * (log_hi - log_lo));
  return util::StrFormat("%.2f", value);
}

std::string WordFactory::MakeYear(int lo, int hi) {
  return std::to_string(rng_.UniformRange(lo, hi));
}

const std::string& WordFactory::Pick(const std::vector<std::string>& pool) {
  DIAL_CHECK(!pool.empty());
  return pool[rng_.UniformInt(pool.size())];
}

std::vector<std::string> WordFactory::PickDistinct(
    const std::vector<std::string>& pool, size_t k) {
  DIAL_CHECK_LE(k, pool.size());
  std::vector<std::string> out;
  for (const size_t i : rng_.SampleWithoutReplacement(pool.size(), k)) {
    out.push_back(pool[i]);
  }
  return out;
}

const std::vector<std::string>& WordFactory::ProductNouns() {
  static const auto* pool = NewPool({
      "player",  "camera",   "printer", "speaker", "cable",   "laptop",
      "monitor", "keyboard", "mouse",   "router",  "charger", "adapter",
      "headset", "tablet",   "phone",   "battery", "drive",   "memory",
      "scanner", "projector", "tripod", "lens",    "case",    "dock",
      "stand",   "hub",      "switch",  "webcam",  "microphone", "amplifier",
      "receiver", "subwoofer", "turntable", "recorder", "radio", "console",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::Adjectives() {
  static const auto* pool = NewPool({
      "wireless", "portable", "digital",  "compact",   "premium",  "ultra",
      "slim",     "rugged",   "smart",    "professional", "classic", "advanced",
      "dual",     "universal", "flexible", "ergonomic", "optical",  "magnetic",
      "waterproof", "foldable", "adjustable", "rechargeable", "bluetooth", "stereo",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::Colors() {
  static const auto* pool = NewPool({
      "black", "white", "silver", "blue", "red", "gray", "green", "gold",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::MarketingWords() {
  static const auto* pool = NewPool({
      "new", "genuine", "oem", "edition", "bundle", "pack", "kit", "series",
      "pro", "plus", "max", "mini", "sale", "retail",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::AcademicWords() {
  static const auto* pool = NewPool({
      "efficient", "scalable",  "adaptive",  "distributed", "parallel",
      "query",     "database",  "index",     "learning",    "optimization",
      "stream",    "graph",     "cluster",   "transaction", "storage",
      "semantic",  "relational", "temporal", "spatial",     "probabilistic",
      "mining",    "retrieval", "integration", "resolution", "matching",
      "processing", "analysis", "evaluation", "framework",  "algorithm",
      "system",    "model",     "approach",  "method",      "architecture",
      "caching",   "sampling",  "ranking",   "estimation",  "compression",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::Venues() {
  static const auto* pool = NewPool({
      "international conference on data engineering",
      "conference on management of data",
      "very large data bases journal",
      "transactions on database systems",
      "symposium on principles of database systems",
      "conference on information and knowledge management",
      "transactions on knowledge and data engineering",
      "international conference on extending database technology",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::VenueAbbreviations() {
  static const auto* pool = NewPool({
      "icde", "sigmod", "vldb j", "tods", "pods", "cikm", "tkde", "edbt",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::FirstNames() {
  static const auto* pool = NewPool({
      "james", "maria", "wei",   "anna",  "david", "elena",  "rajiv", "yuki",
      "peter", "laura", "igor",  "sofia", "omar",  "claire", "henrik", "priya",
      "carlos", "mei",  "tomas", "ingrid",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::LastNames() {
  static const auto* pool = NewPool({
      "garcia",  "mueller", "chen",     "novak",   "rossi",    "tanaka",
      "kumar",   "ivanov",  "andersson", "martin",  "silva",    "kowalski",
      "nguyen",  "haddad",  "okafor",   "johansson", "moreau",  "petrov",
      "yamamoto", "fischer",
  });
  return *pool;
}

const std::vector<std::string>& WordFactory::CommonWords() {
  static const auto* pool = NewPool({
      "the",  "quick", "bright", "garden", "river",  "mountain", "window",
      "market", "village", "winter", "summer", "machine", "engine", "signal",
      "story", "letter", "number", "house",  "street", "music",   "light",
      "water", "paper",  "silver", "table",  "handle", "button",  "screen",
      "forest", "castle", "bridge", "harbor", "field",  "stone",   "cloud",
      "thunder", "morning", "evening", "journey", "teacher", "doctor", "hunter",
  });
  return *pool;
}

std::string WordFactory::Synonym(const std::string& word) {
  static const auto* map = new std::unordered_map<std::string, std::string>{
      // adjectives
      {"wireless", "cordless"},
      {"portable", "travel"},
      {"digital", "electronic"},
      {"compact", "small"},
      {"premium", "deluxe"},
      {"ultra", "extreme"},
      {"slim", "thin"},
      {"rugged", "durable"},
      {"smart", "intelligent"},
      {"professional", "prograde"},
      {"classic", "vintage"},
      {"advanced", "modern"},
      {"dual", "double"},
      {"universal", "allround"},
      {"flexible", "bendable"},
      {"ergonomic", "comfort"},
      {"optical", "optic"},
      {"magnetic", "magnet"},
      {"waterproof", "watertight"},
      {"foldable", "folding"},
      {"adjustable", "adjusting"},
      {"rechargeable", "recharging"},
      {"stereo", "stereophonic"},
      // nouns
      {"player", "mediaplayer"},
      {"camera", "camcorder"},
      {"printer", "inkjet"},
      {"speaker", "loudspeaker"},
      {"cable", "cord"},
      {"laptop", "notebook"},
      {"monitor", "display"},
      {"keyboard", "keypad"},
      {"mouse", "pointer"},
      {"router", "modem"},
      {"charger", "recharger"},
      {"adapter", "converter"},
      {"headset", "headphones"},
      {"tablet", "slate"},
      {"phone", "handset"},
      {"battery", "powercell"},
      {"drive", "disk"},
      {"memory", "storage"},
      {"scanner", "digitizer"},
      {"projector", "beamer"},
      {"tripod", "stand3"},
      {"lens", "optics"},
      {"dock", "docking"},
      {"hub", "splitter"},
      {"webcam", "webcamera"},
      {"microphone", "mic"},
      {"amplifier", "amp"},
      {"receiver", "tuner"},
      {"subwoofer", "woofer"},
      {"turntable", "recordplayer"},
      {"recorder", "recording"},
      {"radio", "tuner2"},
      {"console", "gamestation"},
  };
  auto it = map->find(word);
  if (it == map->end()) return word;
  return it->second;
}

}  // namespace dial::data
