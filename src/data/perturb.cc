#include "data/perturb.h"

#include <cctype>

#include "util/logging.h"
#include "util/string_util.h"

namespace dial::data {

std::string ApplyTypo(const std::string& word, util::Rng& rng) {
  if (word.size() < 3) return word;
  std::string out = word;
  const size_t pos = 1 + rng.UniformInt(out.size() - 2);
  switch (rng.UniformInt(4)) {
    case 0:  // swap with next
      std::swap(out[pos], out[pos - 1]);
      break;
    case 1:  // drop
      out.erase(pos, 1);
      break;
    case 2:  // duplicate
      out.insert(pos, 1, out[pos]);
      break;
    default:  // replace with neighbouring letter
      out[pos] = static_cast<char>('a' + rng.UniformInt(26));
      break;
  }
  return out;
}

std::string Abbreviate(const std::string& word, util::Rng& rng) {
  if (word.size() < 5) return word;
  const size_t keep = 3 + rng.UniformInt(2);
  return word.substr(0, keep) + ".";
}

std::vector<std::string> PerturbTokens(const std::vector<std::string>& tokens,
                                       const TokenNoise& noise, util::Rng& rng) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const std::string& token : tokens) {
    if (out.size() + 1 < tokens.size() && rng.Bernoulli(noise.drop_prob)) {
      continue;  // drop (but never drop the final remaining token)
    }
    std::string t = token;
    if (rng.Bernoulli(noise.abbrev_prob)) {
      t = Abbreviate(t, rng);
    } else if (rng.Bernoulli(noise.typo_prob)) {
      t = ApplyTypo(t, rng);
    }
    out.push_back(std::move(t));
  }
  if (out.empty()) out.push_back(tokens.empty() ? "" : tokens[0]);
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    if (rng.Bernoulli(noise.swap_prob)) std::swap(out[i], out[i + 1]);
  }
  return out;
}

std::string JitterNumber(const std::string& value, double rel_noise, util::Rng& rng) {
  const double v = std::strtod(value.c_str(), nullptr);
  const double factor = 1.0 + (rng.Uniform() * 2.0 - 1.0) * rel_noise;
  return util::StrFormat("%.2f", v * factor);
}

std::string GermanMorph(const std::string& word) {
  if (word.empty()) return word;
  std::string out;
  out.reserve(word.size() + 4);
  for (size_t i = 0; i < word.size(); ++i) {
    const char c = word[i];
    const char next = i + 1 < word.size() ? word[i + 1] : '\0';
    if (c == 't' && next == 'h') {
      out.push_back('t');
      ++i;
    } else if (c == 'p' && next == 'h') {
      out.push_back('f');
      ++i;
    } else if (c == 'c' && next == 'k') {
      out += "kk";
      ++i;
    } else if (c == 'c') {
      out.push_back('k');
    } else if (c == 'w') {
      out.push_back('v');
    } else if (c == 'y') {
      out.push_back('j');
    } else {
      out.push_back(c);
    }
  }
  // Affixes keyed on word shape (deterministic).
  const char last = out.back();
  const bool vowel_end = last == 'a' || last == 'e' || last == 'i' || last == 'o' ||
                         last == 'u';
  if (out.size() >= 6) {
    out = "ge" + out;
  }
  if (vowel_end) {
    out += "n";
  } else {
    out += "en";
  }
  return out;
}

std::string GermanMorphSentence(const std::string& sentence) {
  std::string out;
  std::string word;
  auto flush = [&]() {
    if (word.empty()) return;
    bool alpha = true;
    for (const char c : word) {
      if (!std::isalpha(static_cast<unsigned char>(c))) {
        alpha = false;
        break;
      }
    }
    out += alpha ? GermanMorph(word) : word;
    word.clear();
  };
  bool in_tag = false;
  for (const char c : sentence) {
    if (c == '<') in_tag = true;
    if (in_tag || !std::isalpha(static_cast<unsigned char>(c))) {
      flush();
      out.push_back(c);
      if (c == '>') in_tag = false;
    } else {
      word.push_back(c);
    }
  }
  flush();
  return out;
}

}  // namespace dial::data
