#ifndef DIAL_TPLM_MODEL_CACHE_H_
#define DIAL_TPLM_MODEL_CACHE_H_

#include <string>
#include <vector>

#include "tplm/tplm.h"
#include "util/status.h"

/// \file
/// Disk cache for pretrained TPLM weights. Pretraining is deterministic given
/// (config, corpus, options, seed), so the cache key is a fingerprint of all
/// three; benches and tests that share a dataset reuse one pretrained model
/// instead of re-running MLM.

namespace dial::tplm {

class ModelCache {
 public:
  /// `dir` is created if missing. An empty dir disables caching entirely.
  explicit ModelCache(std::string dir);

  /// Default directory: $DIAL_CACHE_DIR or /tmp/dial_model_cache.
  static ModelCache Default();

  /// Loads cached weights into `model` if present; otherwise runs
  /// `PretrainMlm(model, vocab, corpus, options)` and stores the result.
  /// `corpus_tag` must uniquely identify the corpus content (e.g. a content
  /// hash); it is combined with the model/pretrain fingerprints.
  PretrainStats GetOrPretrain(TplmModel& model, const text::SubwordVocab& vocab,
                              const std::vector<std::string>& corpus,
                              const PretrainOptions& options, uint64_t corpus_tag);

  /// True if the last GetOrPretrain call hit the cache.
  bool last_was_hit() const { return last_was_hit_; }

 private:
  std::string KeyPath(const TplmModel& model, const PretrainOptions& options,
                      uint64_t corpus_tag) const;

  std::string dir_;
  bool last_was_hit_ = false;
};

/// Content hash of corpus lines (order-sensitive).
uint64_t CorpusFingerprint(const std::vector<std::string>& corpus);

}  // namespace dial::tplm

#endif  // DIAL_TPLM_MODEL_CACHE_H_
