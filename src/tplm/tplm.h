#ifndef DIAL_TPLM_TPLM_H_
#define DIAL_TPLM_TPLM_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/transformer.h"
#include "text/vocab.h"

/// \file
/// The "transformer pre-trained language model" substrate. Substitutes for
/// RoBERTa / multilingual BERT (see DESIGN.md §2): same interface contract —
/// a transformer with contextual token embeddings, pretrained on unlabeled
/// text via masked-language modelling, invokable in paired mode (joint CLS
/// embedding, Sec. 2.2.1) and single mode (mean-pooled record embedding,
/// Sec. 2.2.2 / Eq. 3).

namespace dial::tplm {

struct TplmConfig {
  nn::TransformerConfig transformer;
  /// Max sequence length for single-mode encodings (records).
  size_t max_single_len = 28;
  /// Max sequence length for paired-mode encodings.
  size_t max_pair_len = 60;
  /// Single-mode pooling mix: E(x) = mean over tokens of
  /// (1-w)*embedding_layer + w*last_layer. At small model scales the
  /// embedding layer carries the lexical-overlap signal blocking needs;
  /// w blends in contextual information.
  float single_mode_last_weight = 0.0f;

  TplmConfig() {
    transformer.max_positions = 60;
  }

  uint64_t Fingerprint() const;
};

/// Transformer encoder + tied-weight MLM head.
class TplmModel : public nn::Module {
 public:
  TplmModel(std::string name, TplmConfig config, uint64_t seed);

  const TplmConfig& config() const { return config_; }
  size_t dim() const { return config_.transformer.dim; }
  nn::TransformerEncoder& encoder() { return encoder_; }

  /// Single mode: mean of contextual token embeddings (Eq. 3). Returns (1, d).
  autograd::Var EncodeSingle(nn::ForwardContext& ctx, const text::EncodedSequence& seq);

  /// Paired mode: CLS contextual embedding (Sec. 2.2.1). Returns (1, d).
  autograd::Var EncodePair(nn::ForwardContext& ctx, const text::EncodedSequence& seq);

  /// Enriched pair embedding E(r,s) for the matcher head: [CLS ; mean(seg0) ;
  /// mean(seg1) ; |mean(seg0) - mean(seg1)|], returns (1, 4d). At RoBERTa
  /// scale CLS alone suffices (Eq. 5); at this repo's model scale the
  /// explicit segment-difference features are required for the head to see
  /// cross-record evidence. Documented substitution (DESIGN.md §2).
  autograd::Var EncodePairFeatures(nn::ForwardContext& ctx,
                                   const text::EncodedSequence& seq);

  /// Output dimension of EncodePairFeatures.
  size_t pair_feature_dim() const { return 4 * config_.transformer.dim + 4; }

  /// Masked-LM loss for one sequence: BERT's 15% dynamic masking
  /// (80% [MASK] / 10% random / 10% keep); logits share weights with the
  /// token embedding table. Returns a 1x1 loss var, or an invalid var when
  /// no position was masked.
  autograd::Var MlmLoss(nn::ForwardContext& ctx, const text::EncodedSequence& seq,
                        util::Rng& rng, float mask_prob = 0.15f);

  // ---- Inference engine (tape-free, cross-sequence batched) ----
  // The batched entry points length-bucket their inputs, pack each bucket
  // into one (B·len, dim) activation, and run the no-grad encoder forward
  // through an InferenceContext arena. Outputs are bit-identical to running
  // the corresponding Tape forward per sequence (dropout off), and
  // bit-identical across thread counts.

  /// Single-mode embeddings E(x) (Eq. 3): one row per sequence.
  la::Matrix EncodeSingleBatch(
      autograd::InferenceContext& ctx,
      const std::vector<const text::EncodedSequence*>& seqs) const;

  /// Matcher input features (see EncodePairFeatures): one row per sequence,
  /// pair_feature_dim() columns.
  la::Matrix EncodePairFeaturesBatch(
      autograd::InferenceContext& ctx,
      const std::vector<const text::EncodedSequence*>& seqs) const;

  /// Forward-only MLM loss under the same dynamic masking as MlmLoss (the
  /// rng streams stay in lockstep), without recording a tape — the held-out
  /// eval path. Returns -1 when no position was masked.
  double EvalMlmLoss(autograd::InferenceContext& ctx,
                     const text::EncodedSequence& seq, util::Rng& rng,
                     float mask_prob = 0.15f) const;

 private:
  /// The four soft token-alignment features of EncodePairFeatures, computed
  /// tape-free for one sequence into out4[0..4).
  void InferAlignFeatures(autograd::InferenceContext& ctx,
                          const text::EncodedSequence& seq, size_t split,
                          float* out4) const;

  TplmConfig config_;
  util::Rng init_rng_;  // must precede encoder_: consumed during construction
  nn::TransformerEncoder encoder_;
};

struct PretrainOptions {
  size_t epochs = 30;
  size_t batch_size = 16;
  float lr = 1e-3f;
  uint64_t seed = 13;
  /// Emit a progress log line every N batches (0 = quiet).
  size_t log_every = 0;
  /// Optional unowned worker pool: pretraining tapes thread their GEMMs
  /// through it (bit-identical to inline execution — see la/kernels.h).
  util::ThreadPool* pool = nullptr;

  /// Self-supervised pair-discrimination (SPD) phase after MLM: the model
  /// classifies (x, perturb(x)) vs (x, random y) in paired mode with a
  /// throwaway head. This teaches cross-segment token comparison — the
  /// capability web-scale pretraining gives real TPLMs and the paired-mode
  /// matcher depends on. 0 disables.
  size_t pair_epochs = 20;
  float pair_lr = 1e-3f;
  /// Per-piece perturbation rates when forming the positive copy.
  double pair_drop_prob = 0.15;
  double pair_swap_prob = 0.10;
  double pair_replace_prob = 0.05;

  uint64_t Fingerprint() const;
};

/// Result diagnostics from pretraining.
struct PretrainStats {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  size_t steps = 0;
  double pair_initial_loss = 0.0;
  double pair_final_loss = 0.0;
  double pair_accuracy = 0.0;  // final-epoch SPD accuracy
};

/// Pretrains `model` with MLM on raw text lines (the unlabeled record corpus
/// R ∪ S — the stand-in for RoBERTa's web-scale pretraining).
PretrainStats PretrainMlm(TplmModel& model, const text::SubwordVocab& vocab,
                          const std::vector<std::string>& corpus,
                          const PretrainOptions& options);

/// Self-supervised pair-discrimination phase (see PretrainOptions). Returns
/// stats with only the pair_* fields filled.
PretrainStats PretrainPairDiscrimination(TplmModel& model,
                                         const text::SubwordVocab& vocab,
                                         const std::vector<std::string>& corpus,
                                         const PretrainOptions& options);

/// Full pretraining pipeline: MLM followed by pair discrimination.
PretrainStats Pretrain(TplmModel& model, const text::SubwordVocab& vocab,
                       const std::vector<std::string>& corpus,
                       const PretrainOptions& options);

}  // namespace dial::tplm

#endif  // DIAL_TPLM_TPLM_H_
