#include "tplm/model_cache.h"

#include <cstdlib>
#include <filesystem>

#include "util/hash.h"
#include "util/serialize.h"

namespace dial::tplm {

namespace {
constexpr uint32_t kMagic = 0xd1a17001u;  // "dial tplm"
// v2: CRC32C trailer; v1 entries still load unverified (a stale or corrupt
// entry is recoverable anyway — the cache just re-pretrains).
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;
constexpr uint32_t kCrcFromVersion = 2;
}  // namespace

ModelCache::ModelCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      DIAL_LOG_WARNING << "model cache disabled, cannot create " << dir_ << ": "
                       << ec.message();
      dir_.clear();
    }
  }
}

ModelCache ModelCache::Default() {
  const char* env = std::getenv("DIAL_CACHE_DIR");
  return ModelCache(env != nullptr ? env : "/tmp/dial_model_cache");
}

std::string ModelCache::KeyPath(const TplmModel& model, const PretrainOptions& options,
                                uint64_t corpus_tag) const {
  // Weights depend on the transformer shape, the MLM sequence length, the
  // pretraining options and the corpus — not on inference-time knobs like
  // the single-mode pooling mix, so those stay out of the key.
  uint64_t key = model.config().transformer.Fingerprint();
  key = util::HashCombine(key, model.config().max_single_len);
  key = util::HashCombine(key, options.Fingerprint());
  key = util::HashCombine(key, corpus_tag);
  return dir_ + "/tplm_" + util::HexDigest(key) + ".bin";
}

PretrainStats ModelCache::GetOrPretrain(TplmModel& model,
                                        const text::SubwordVocab& vocab,
                                        const std::vector<std::string>& corpus,
                                        const PretrainOptions& options,
                                        uint64_t corpus_tag) {
  last_was_hit_ = false;
  std::string path;
  if (!dir_.empty()) {
    path = KeyPath(model, options, corpus_tag);
    util::BinaryReader reader(path, kMagic, kMinVersion, kVersion,
                              kCrcFromVersion);
    if (reader.status().ok()) {
      util::Status load = model.Load(reader);
      if (load.ok()) {
        last_was_hit_ = true;
        return PretrainStats{};
      }
      DIAL_LOG_WARNING << "stale model cache entry " << path << ": "
                       << load.ToString();
    }
  }
  PretrainStats stats = Pretrain(model, vocab, corpus, options);
  if (!path.empty()) {
    util::BinaryWriter writer(path, kMagic, kVersion, /*with_crc=*/true);
    model.Save(writer);
    util::Status st = writer.Finish();
    if (!st.ok()) {
      DIAL_LOG_WARNING << "failed to store model cache entry: " << st.ToString();
    }
  }
  return stats;
}

uint64_t CorpusFingerprint(const std::vector<std::string>& corpus) {
  uint64_t h = util::kFnvOffset;
  for (const std::string& line : corpus) {
    h = util::Fnv1a(line, h);
    h = util::HashCombine(h, line.size());
  }
  return h;
}

}  // namespace dial::tplm
