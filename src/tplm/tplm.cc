#include "tplm/tplm.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "autograd/inference.h"
#include "autograd/optim.h"
#include "autograd/ops.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dial::tplm {

using autograd::Var;

uint64_t TplmConfig::Fingerprint() const {
  uint64_t h = transformer.Fingerprint();
  h = util::HashCombine(h, max_single_len);
  h = util::HashCombine(h, max_pair_len);
  h = util::HashCombine(h, static_cast<uint64_t>(single_mode_last_weight * 1000));
  return h;
}

uint64_t PretrainOptions::Fingerprint() const {
  const std::string text = util::StrFormat(
      "e=%zu,b=%zu,lr=%.6f,s=%llu,pe=%zu,plr=%.6f,pd=%.3f,ps=%.3f,pr=%.3f,hn=1,pf=4d4a", epochs,
      batch_size, lr, static_cast<unsigned long long>(seed), pair_epochs, pair_lr,
      pair_drop_prob, pair_swap_prob, pair_replace_prob);
  return util::Fnv1a(text);
}

TplmModel::TplmModel(std::string name, TplmConfig config, uint64_t seed)
    : Module(name),
      config_(config),
      init_rng_(seed),
      encoder_(name + ".encoder", config.transformer, init_rng_) {
  AddChild(&encoder_);
}

Var TplmModel::EncodeSingle(nn::ForwardContext& ctx, const text::EncodedSequence& seq) {
  // First+last-layer average pooling: mean over tokens of the average of the
  // embedding-layer output and the final contextual layer. At small model
  // scales the embedding layer carries the lexical-overlap signal blocking
  // depends on, while the top layer contributes context — the standard
  // sentence-embedding pooling for compact LMs (Eq. 3's mean, applied to the
  // first/last mix).
  const float w = config_.single_mode_last_weight;
  Var first;
  Var last = encoder_.Forward(ctx, seq.ids, seq.segments, &first);
  if (w <= 0.0f) return autograd::MeanRows(first);
  return autograd::MeanRows(autograd::Add(autograd::ScalarMul(first, 1.0f - w),
                                          autograd::ScalarMul(last, w)));
}

Var TplmModel::EncodePair(nn::ForwardContext& ctx, const text::EncodedSequence& seq) {
  Var hidden = encoder_.Forward(ctx, seq.ids, seq.segments);
  return autograd::SliceRows(hidden, 0, 1);
}

namespace {

/// Contiguous-segment split point of a paired encoding: index of the first
/// segment-1 token. [0, split) is record r (incl. CLS and the first SEP),
/// [split, n) is record s. Shared by the tape and inference feature paths.
size_t PairSplit(const text::EncodedSequence& seq) {
  size_t split = seq.segments.size();
  for (size_t i = 0; i < seq.segments.size(); ++i) {
    if (seq.segments[i] == 1) {
      split = i;
      break;
    }
  }
  DIAL_CHECK_GT(split, 0u);
  DIAL_CHECK_LT(split, seq.segments.size());
  return split;
}

}  // namespace

Var TplmModel::EncodePairFeatures(nn::ForwardContext& ctx,
                                  const text::EncodedSequence& seq) {
  Var first;
  Var hidden = encoder_.Forward(ctx, seq.ids, seq.segments, &first);
  const size_t split = PairSplit(seq);
  const size_t n = seq.segments.size();
  Var cls = autograd::SliceRows(hidden, 0, 1);
  // Segment means over the lexical (embedding-layer) representation — the
  // same space single-mode blocking pools over.
  Var mean0 = autograd::MeanRows(autograd::SliceRows(first, 0, split));
  Var mean1 = autograd::MeanRows(autograd::SliceRows(first, split, n));
  Var diff = autograd::Abs(autograd::Sub(mean0, mean1));

  // Soft token-alignment features: per-token best cosine match in the other
  // record. The mean and worst-case alignment expose exactly the
  // "everything matches except one key token" evidence that separates true
  // duplicates from variant near-duplicates (the paper's book-edition
  // example) — evidence a small CLS bottleneck cannot carry on its own.
  // Alignment uses raw token-table embeddings (no position/segment/LN): an
  // identical piece in both records must align with cosine exactly 1.
  const size_t body0_begin = 1;                       // skip CLS
  const size_t body0_end = split > 2 ? split - 1 : split;  // skip first SEP
  const size_t body1_begin = split;
  const size_t body1_end = n > split + 1 ? n - 1 : n;      // skip final SEP
  std::vector<int> body0_ids(seq.ids.begin() + body0_begin,
                             seq.ids.begin() + std::max(body0_end, body0_begin + 1));
  std::vector<int> body1_ids(seq.ids.begin() + body1_begin,
                             seq.ids.begin() + std::max(body1_end, body1_begin + 1));
  autograd::Parameter* table = encoder_.token_embedding().table();
  Var f0 = autograd::NormalizeRows(
      autograd::EmbeddingGather(*ctx.tape, table, body0_ids));
  Var f1 = autograd::NormalizeRows(
      autograd::EmbeddingGather(*ctx.tape, table, body1_ids));
  Var sim = autograd::MatMulTransposeB(f1, f0);  // (n1, n0) cosine matrix
  Var best_1to0 = autograd::RowMax(sim);                       // (n1, 1)
  Var best_0to1 = autograd::RowMax(autograd::Transpose(sim));  // (n0, 1)
  Var align = autograd::ConcatCols({
      autograd::MeanRows(best_1to0),
      autograd::ScalarMul(autograd::RowMax(autograd::Transpose(
                              autograd::ScalarMul(best_1to0, -1.0f))),
                          -1.0f),  // min alignment s->r
      autograd::MeanRows(best_0to1),
      autograd::ScalarMul(autograd::RowMax(autograd::Transpose(
                              autograd::ScalarMul(best_0to1, -1.0f))),
                          -1.0f),  // min alignment r->s
  });
  return autograd::ConcatCols({cls, mean0, mean1, diff, align});
}

namespace {

/// Sequences per packed inference forward. Small on purpose: the per-head
/// activation buffers of a pack must stay L2-resident (a 64-seq pack of
/// len-60 pairs measurably loses to packs of one on a 1 MB-L2 container),
/// while 8 still amortizes GEMM setup and feeds the pack-level ParallelFor
/// plenty of independent work.
constexpr size_t kMaxInferPack = 8;

/// One same-length pack of sequence indices (in input order).
struct InferPack {
  size_t len = 0;
  std::vector<size_t> idx;
};

/// Length-buckets `seqs` into packs of at most kMaxInferPack sequences.
/// Buckets are emitted in ascending length order; results never depend on
/// pack composition (per-sequence outputs are row-independent).
std::vector<InferPack> LengthPacks(
    const std::vector<const text::EncodedSequence*>& seqs) {
  std::map<size_t, std::vector<size_t>> by_len;
  for (size_t i = 0; i < seqs.size(); ++i) {
    DIAL_CHECK_EQ(seqs[i]->ids.size(), seqs[i]->segments.size());
    DIAL_CHECK_GT(seqs[i]->ids.size(), 0u);
    by_len[seqs[i]->ids.size()].push_back(i);
  }
  std::vector<InferPack> packs;
  for (const auto& [len, members] : by_len) {
    for (size_t begin = 0; begin < members.size(); begin += kMaxInferPack) {
      const size_t end = std::min(members.size(), begin + kMaxInferPack);
      InferPack pack;
      pack.len = len;
      pack.idx.assign(members.begin() + begin, members.begin() + end);
      packs.push_back(std::move(pack));
    }
  }
  return packs;
}

/// Packs a bucket's ids/segments back to back for the batched encoder.
void PackSequences(const std::vector<const text::EncodedSequence*>& seqs,
                   const InferPack& pack, std::vector<int>& ids,
                   std::vector<int>& segments) {
  const size_t len = pack.len;
  ids.resize(pack.idx.size() * len);
  segments.resize(ids.size());
  for (size_t b = 0; b < pack.idx.size(); ++b) {
    const text::EncodedSequence& seq = *seqs[pack.idx[b]];
    std::copy(seq.ids.begin(), seq.ids.end(), ids.begin() + b * len);
    std::copy(seq.segments.begin(), seq.segments.end(),
              segments.begin() + b * len);
  }
}

}  // namespace

la::Matrix TplmModel::EncodeSingleBatch(
    autograd::InferenceContext& ctx,
    const std::vector<const text::EncodedSequence*>& seqs) const {
  namespace infer = autograd::infer;
  const size_t d = config_.transformer.dim;
  la::Matrix out(seqs.size(), d);
  if (seqs.empty()) return out;
  const float w = config_.single_mode_last_weight;
  // Single-mode pooling reads only the embedding layer when the last-layer
  // weight is zero (the default), so the engine prunes the whole attention
  // stack — the Tape path computes and discards it.
  nn::TransformerEncoder::InferOptions options;
  options.embed_only = w <= 0.0f;
  const std::vector<InferPack> packs = LengthPacks(seqs);
  // Packs are independent; fan them out over the pool (nested parallelism
  // inside the encoder degrades to inline execution on pool workers).
  util::ParallelFor(ctx.pool(), packs.size(), [&](size_t begin, size_t end) {
    std::vector<int> ids;
    std::vector<int> segments;
    for (size_t p = begin; p < end; ++p) {
      const InferPack& pack = packs[p];
      const size_t batch = pack.idx.size();
      const size_t len = pack.len;
      PackSequences(seqs, pack, ids, segments);
      autograd::Scratch hidden(ctx, batch * len, d);
      autograd::Scratch first(ctx, batch * len, d);
      encoder_.InferForward(ctx, ids, segments, batch, len, *hidden, &*first,
                            options);
      if (w <= 0.0f) {
        for (size_t b = 0; b < batch; ++b) {
          infer::MeanRowsInto(*first, b * len, len, out.row(pack.idx[b]));
        }
      } else {
        // Mirrors MeanRows(Add(ScalarMul(first, 1-w), ScalarMul(last, w)))
        // as three separate elementwise passes — keeping the multiply and
        // add in distinct loops exactly like the tape ops, so no mul-add
        // contraction can diverge from the tape path.
        autograd::Scratch mix_a(ctx, len, d);
        autograd::Scratch mix_b(ctx, len, d);
        for (size_t b = 0; b < batch; ++b) {
          const float* fr = first->row(b * len);
          const float* lr = hidden->row(b * len);
          float* ma = mix_a->data();
          float* mb = mix_b->data();
          for (size_t i = 0; i < len * d; ++i) ma[i] = fr[i] * (1.0f - w);
          for (size_t i = 0; i < len * d; ++i) mb[i] = lr[i] * w;
          for (size_t i = 0; i < len * d; ++i) ma[i] = ma[i] + mb[i];
          infer::MeanRowsInto(*mix_a, 0, len, out.row(pack.idx[b]));
        }
      }
    }
  });
  return out;
}

void TplmModel::InferAlignFeatures(autograd::InferenceContext& ctx,
                                   const text::EncodedSequence& seq, size_t split,
                                   float* out4) const {
  namespace infer = autograd::infer;
  const size_t n = seq.segments.size();
  const size_t body0_begin = 1;                            // skip CLS
  const size_t body0_end = split > 2 ? split - 1 : split;  // skip first SEP
  const size_t body1_begin = split;
  const size_t body1_end = n > split + 1 ? n - 1 : n;  // skip final SEP
  const size_t n0 = std::max(body0_end, body0_begin + 1) - body0_begin;
  const size_t n1 = std::max(body1_end, body1_begin + 1) - body1_begin;
  const la::Matrix& table = encoder_.token_embedding().table()->value;
  const size_t d = table.cols();
  autograd::Scratch f0(ctx, n0, d);
  autograd::Scratch f1(ctx, n1, d);
  for (size_t i = 0; i < n0; ++i) {
    const float* src = table.row(seq.ids[body0_begin + i]);
    std::copy(src, src + d, f0->row(i));
  }
  for (size_t i = 0; i < n1; ++i) {
    const float* src = table.row(seq.ids[body1_begin + i]);
    std::copy(src, src + d, f1->row(i));
  }
  infer::NormalizeRowsInPlace(*f0);
  infer::NormalizeRowsInPlace(*f1);
  autograd::Scratch sim(ctx, n1, n0);  // (n1, n0) cosine matrix
  infer::MatMulTransposeB(*f1, *f0, *sim, ctx.pool());

  // mean / min of the per-row best matches, mirroring the Tape graph's
  // RowMax (strict >, first index wins) + MeanRows and the negate-max-negate
  // minimum. best_1to0 scans rows of sim; best_0to1 scans its columns
  // (= rows of the transpose).
  float acc_1to0 = 0.0f;
  float neg_max_1to0 = 0.0f;
  for (size_t r = 0; r < n1; ++r) {
    const float* row = sim->row(r);
    float best = row[0];
    for (size_t c = 1; c < n0; ++c) {
      if (row[c] > best) best = row[c];
    }
    acc_1to0 += best;
    if (r == 0 || -best > neg_max_1to0) neg_max_1to0 = -best;
  }
  float acc_0to1 = 0.0f;
  float neg_max_0to1 = 0.0f;
  for (size_t c = 0; c < n0; ++c) {
    float best = (*sim)(0, c);
    for (size_t r = 1; r < n1; ++r) {
      if ((*sim)(r, c) > best) best = (*sim)(r, c);
    }
    acc_0to1 += best;
    if (c == 0 || -best > neg_max_0to1) neg_max_0to1 = -best;
  }
  out4[0] = acc_1to0 * (1.0f / static_cast<float>(n1));
  out4[1] = -neg_max_1to0;  // min alignment s->r
  out4[2] = acc_0to1 * (1.0f / static_cast<float>(n0));
  out4[3] = -neg_max_0to1;  // min alignment r->s
}

la::Matrix TplmModel::EncodePairFeaturesBatch(
    autograd::InferenceContext& ctx,
    const std::vector<const text::EncodedSequence*>& seqs) const {
  namespace infer = autograd::infer;
  const size_t d = config_.transformer.dim;
  la::Matrix out(seqs.size(), pair_feature_dim());
  if (seqs.empty()) return out;
  // Downstream reads only each sequence's CLS row of the last layer (plus
  // the embedding layer), so the final layer runs in CLS-only mode.
  nn::TransformerEncoder::InferOptions options;
  options.cls_only_last = true;
  const std::vector<InferPack> packs = LengthPacks(seqs);
  util::ParallelFor(ctx.pool(), packs.size(), [&](size_t begin, size_t end) {
    std::vector<int> ids;
    std::vector<int> segments;
    for (size_t p = begin; p < end; ++p) {
      const InferPack& pack = packs[p];
      const size_t batch = pack.idx.size();
      const size_t len = pack.len;
      PackSequences(seqs, pack, ids, segments);
      autograd::Scratch hidden(ctx, batch * len, d);
      autograd::Scratch first(ctx, batch * len, d);
      encoder_.InferForward(ctx, ids, segments, batch, len, *hidden, &*first,
                            options);
      for (size_t b = 0; b < batch; ++b) {
        const text::EncodedSequence& seq = *seqs[pack.idx[b]];
        const size_t split = PairSplit(seq);
        float* orow = out.row(pack.idx[b]);
        // [CLS ; mean(seg0) ; mean(seg1) ; |mean0 - mean1| ; align(4)]
        std::copy(hidden->row(b * len), hidden->row(b * len) + d, orow);
        infer::MeanRowsInto(*first, b * len, split, orow + d);
        infer::MeanRowsInto(*first, b * len + split, len - split, orow + 2 * d);
        for (size_t c = 0; c < d; ++c) {
          orow[3 * d + c] = std::fabs(orow[d + c] - orow[2 * d + c]);
        }
        InferAlignFeatures(ctx, seq, split, orow + 4 * d);
      }
    }
  });
  return out;
}

double TplmModel::EvalMlmLoss(autograd::InferenceContext& ctx,
                              const text::EncodedSequence& seq, util::Rng& rng,
                              float mask_prob) const {
  namespace infer = autograd::infer;
  // Identical corruption sampling to MlmLoss: the two paths consume the rng
  // stream in lockstep, so eval losses are comparable step for step.
  const size_t vocab = config_.transformer.vocab_size;
  std::vector<int> corrupted = seq.ids;
  std::vector<int> targets(seq.ids.size(), -1);
  size_t masked = 0;
  for (size_t i = 0; i < corrupted.size(); ++i) {
    if (corrupted[i] < text::SpecialIds::kCount) continue;  // skip specials
    if (!rng.Bernoulli(mask_prob)) continue;
    targets[i] = seq.ids[i];
    ++masked;
    const double roll = rng.Uniform();
    if (roll < 0.8) {
      corrupted[i] = text::SpecialIds::kMask;
    } else if (roll < 0.9) {
      corrupted[i] = static_cast<int>(
          text::SpecialIds::kCount +
          rng.UniformInt(vocab - text::SpecialIds::kCount));
    }  // else keep
  }
  if (masked == 0) return -1.0;
  const size_t len = corrupted.size();
  const size_t d = config_.transformer.dim;
  autograd::Scratch hidden(ctx, len, d);
  encoder_.InferForward(ctx, corrupted, seq.segments, 1, len, *hidden);
  // Tied-weight output projection + the SoftmaxCrossEntropy forward.
  const la::Matrix& table = encoder_.token_embedding().table()->value;
  autograd::Scratch logits(ctx, len, vocab);
  infer::MatMulTransposeB(*hidden, table, *logits, ctx.pool());
  size_t valid = 0;
  double loss = 0.0;
  for (size_t i = 0; i < len; ++i) {
    if (targets[i] < 0) continue;
    ++valid;
    const float* row = logits->row(i);
    float mx = row[0];
    for (size_t c = 1; c < vocab; ++c) mx = std::max(mx, row[c]);
    float acc = 0.0f;
    for (size_t c = 0; c < vocab; ++c) acc += std::exp(row[c] - mx);
    loss += (mx + std::log(acc)) - row[targets[i]];
  }
  return static_cast<float>(loss / static_cast<double>(valid));
}

Var TplmModel::MlmLoss(nn::ForwardContext& ctx, const text::EncodedSequence& seq,
                       util::Rng& rng, float mask_prob) {
  const size_t vocab = config_.transformer.vocab_size;
  std::vector<int> corrupted = seq.ids;
  std::vector<int> targets(seq.ids.size(), -1);
  size_t masked = 0;
  for (size_t i = 0; i < corrupted.size(); ++i) {
    if (corrupted[i] < text::SpecialIds::kCount) continue;  // skip specials
    if (!rng.Bernoulli(mask_prob)) continue;
    targets[i] = seq.ids[i];
    ++masked;
    const double roll = rng.Uniform();
    if (roll < 0.8) {
      corrupted[i] = text::SpecialIds::kMask;
    } else if (roll < 0.9) {
      corrupted[i] = static_cast<int>(
          text::SpecialIds::kCount +
          rng.UniformInt(vocab - text::SpecialIds::kCount));
    }  // else keep
  }
  if (masked == 0) return Var();
  Var hidden = encoder_.Forward(ctx, corrupted, seq.segments);
  // Tied-weight output projection: logits = hidden @ E^T.
  Var table = ctx.tape->Leaf(encoder_.token_embedding().table());
  Var logits = autograd::MatMulTransposeB(hidden, table);
  return autograd::SoftmaxCrossEntropy(logits, targets);
}

PretrainStats PretrainMlm(TplmModel& model, const text::SubwordVocab& vocab,
                          const std::vector<std::string>& corpus,
                          const PretrainOptions& options) {
  DIAL_CHECK(!corpus.empty());
  util::Rng rng(options.seed);
  // Pre-encode the corpus once.
  std::vector<text::EncodedSequence> sequences;
  sequences.reserve(corpus.size());
  for (const std::string& line : corpus) {
    sequences.push_back(vocab.EncodeSingle(line, model.config().max_single_len));
  }

  autograd::AdamW optimizer({{model.Parameters(), options.lr}});
  const size_t batches_per_epoch =
      (sequences.size() + options.batch_size - 1) / options.batch_size;
  autograd::LinearSchedule schedule(
      static_cast<int64_t>(batches_per_epoch * options.epochs));

  PretrainStats stats;
  std::vector<size_t> order(sequences.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  bool first_batch = true;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t begin = 0; begin < order.size(); begin += options.batch_size) {
      const size_t end = std::min(order.size(), begin + options.batch_size);
      autograd::Tape tape;
      tape.SetThreadPool(options.pool);
      nn::ForwardContext ctx{&tape, &rng, /*training=*/true};
      std::vector<Var> losses;
      for (size_t i = begin; i < end; ++i) {
        Var loss = model.MlmLoss(ctx, sequences[order[i]], rng);
        if (loss.valid()) losses.push_back(loss);
      }
      if (losses.empty()) continue;
      Var total = autograd::ScalarMul(autograd::AddN(losses),
                                      1.0f / static_cast<float>(losses.size()));
      optimizer.ZeroGrad();
      tape.Backward(total);
      optimizer.Step(schedule.Multiplier(optimizer.steps_taken()));
      stats.final_loss = total.scalar();
      if (first_batch) {
        stats.initial_loss = stats.final_loss;
        first_batch = false;
      }
      ++stats.steps;
      if (options.log_every > 0 && stats.steps % options.log_every == 0) {
        DIAL_LOG_INFO << "MLM pretrain step " << stats.steps
                      << " loss=" << stats.final_loss;
      }
    }
  }
  return stats;
}

PretrainStats PretrainPairDiscrimination(TplmModel& model,
                                         const text::SubwordVocab& vocab,
                                         const std::vector<std::string>& corpus,
                                         const PretrainOptions& options) {
  PretrainStats stats;
  if (options.pair_epochs == 0 || corpus.size() < 2) return stats;
  util::Rng rng(options.seed ^ 0x9a129a12ULL);

  // Pre-encode raw piece lists (no specials) once.
  const size_t body_budget = (model.config().max_pair_len - 3) / 2;
  std::vector<std::vector<int>> pieces;
  pieces.reserve(corpus.size());
  for (const std::string& line : corpus) {
    pieces.push_back(vocab.EncodeText(line, body_budget));
  }

  /// Perturbed copy: per-piece drop / adjacent swap / random replacement.
  auto perturb = [&](const std::vector<int>& src) {
    std::vector<int> out;
    out.reserve(src.size());
    for (const int id : src) {
      if (out.size() + 1 < src.size() && rng.Bernoulli(options.pair_drop_prob)) {
        continue;
      }
      if (rng.Bernoulli(options.pair_replace_prob)) {
        out.push_back(static_cast<int>(
            text::SpecialIds::kCount +
            rng.UniformInt(vocab.size() - text::SpecialIds::kCount)));
      } else {
        out.push_back(id);
      }
    }
    if (out.empty()) out.push_back(text::SpecialIds::kUnk);
    for (size_t i = 0; i + 1 < out.size(); ++i) {
      if (rng.Bernoulli(options.pair_swap_prob)) std::swap(out[i], out[i + 1]);
    }
    return out;
  };

  // Synthetic hard negative: a "sibling" of x produced by mutating its key
  // pieces — digit-bearing pieces (model numbers, years, prices) and, when
  // absent, a couple of random pieces. Guaranteed non-duplicate while
  // sharing most context, mirroring the variant/edition near-duplicates the
  // paper's matcher must separate (Sec. 2.2.1's book-edition example).
  auto mutate_keys = [&](std::vector<int> src) {
    auto is_digit_piece = [&](int id) {
      const std::string& p = vocab.piece(id);
      for (const char c : p) {
        if (c >= '0' && c <= '9') return true;
      }
      return false;
    };
    size_t mutated = 0;
    for (auto& id : src) {
      if (is_digit_piece(id) && rng.Bernoulli(0.6)) {
        // Swap in a different digit-bearing piece.
        for (int tries = 0; tries < 8; ++tries) {
          const int candidate = static_cast<int>(
              text::SpecialIds::kCount +
              rng.UniformInt(vocab.size() - text::SpecialIds::kCount));
          if (candidate != id && is_digit_piece(candidate)) {
            id = candidate;
            ++mutated;
            break;
          }
        }
      }
    }
    while (mutated < 2 && !src.empty()) {
      auto& id = src[rng.UniformInt(src.size())];
      id = static_cast<int>(text::SpecialIds::kCount +
                            rng.UniformInt(vocab.size() - text::SpecialIds::kCount));
      ++mutated;
    }
    return src;
  };

  // Throwaway head (the matcher re-initializes its own head later; only the
  // transformer body keeps what SPD teaches).
  util::Rng head_rng(options.seed ^ 0x51d51dULL);
  const size_t d = model.config().transformer.dim;
  nn::Linear head_dense("spd.dense", model.pair_feature_dim(), d, head_rng);
  nn::Linear head_out("spd.out", d, 1, head_rng);

  std::vector<autograd::Parameter*> head_params = head_dense.Parameters();
  for (autograd::Parameter* p : head_out.Parameters()) head_params.push_back(p);
  autograd::AdamW optimizer(
      {{head_params, 1e-3f}, {model.Parameters(), options.pair_lr}});
  const size_t steps_per_epoch =
      (corpus.size() + options.batch_size - 1) / options.batch_size;
  autograd::LinearSchedule schedule(
      static_cast<int64_t>(steps_per_epoch * options.pair_epochs));

  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  bool first = true;
  size_t final_correct = 0;
  size_t final_total = 0;
  for (size_t epoch = 0; epoch < options.pair_epochs; ++epoch) {
    rng.Shuffle(order);
    const bool last_epoch = epoch + 1 == options.pair_epochs;
    for (size_t begin = 0; begin < order.size(); begin += options.batch_size) {
      const size_t end = std::min(order.size(), begin + options.batch_size);
      autograd::Tape tape;
      tape.SetThreadPool(options.pool);
      nn::ForwardContext ctx{&tape, &rng, /*training=*/true};
      std::vector<autograd::Var> logits;
      std::vector<float> targets;
      for (size_t i = begin; i < end; ++i) {
        const size_t a = order[i];
        const bool positive = rng.Bernoulli(0.5);
        std::vector<int> other;
        if (positive) {
          other = perturb(pieces[a]);
        } else if (rng.Bernoulli(0.5)) {
          // Hard negative: synthetic sibling of x (keys mutated).
          other = mutate_keys(perturb(pieces[a]));
        } else {
          // Easy negative: a different record.
          size_t b = rng.UniformInt(pieces.size());
          if (b == a) b = (b + 1) % pieces.size();
          other = pieces[b];
        }
        const text::EncodedSequence seq = text::SubwordVocab::BuildPairFromPieces(
            pieces[a], other, model.config().max_pair_len);
        autograd::Var cls = model.EncodePairFeatures(ctx, seq);
        autograd::Var h = autograd::Tanh(head_dense.Forward(ctx, cls));
        logits.push_back(head_out.Forward(ctx, h));
        targets.push_back(positive ? 1.0f : 0.0f);
      }
      autograd::Var batch_logits = autograd::ConcatRows(logits);
      autograd::Var loss = autograd::BceWithLogits(batch_logits, targets);
      optimizer.ZeroGrad();
      tape.Backward(loss);
      optimizer.Step(schedule.Multiplier(optimizer.steps_taken()));
      stats.pair_final_loss = loss.scalar();
      if (first) {
        stats.pair_initial_loss = stats.pair_final_loss;
        first = false;
      }
      if (last_epoch) {
        for (size_t i = 0; i < targets.size(); ++i) {
          const bool pred = batch_logits.value()(i, 0) > 0.0f;
          final_correct += pred == (targets[i] > 0.5f);
          ++final_total;
        }
      }
    }
  }
  if (final_total > 0) {
    stats.pair_accuracy =
        static_cast<double>(final_correct) / static_cast<double>(final_total);
  }
  return stats;
}

PretrainStats Pretrain(TplmModel& model, const text::SubwordVocab& vocab,
                       const std::vector<std::string>& corpus,
                       const PretrainOptions& options) {
  PretrainStats stats = PretrainMlm(model, vocab, corpus, options);
  const PretrainStats pair = PretrainPairDiscrimination(model, vocab, corpus, options);
  stats.pair_initial_loss = pair.pair_initial_loss;
  stats.pair_final_loss = pair.pair_final_loss;
  stats.pair_accuracy = pair.pair_accuracy;
  return stats;
}

}  // namespace dial::tplm
