#include "core/matcher.h"

#include <algorithm>
#include <cmath>

#include "autograd/optim.h"
#include "autograd/ops.h"

namespace dial::core {

using autograd::Var;

Matcher::Matcher(const tplm::TplmConfig& config, const MatcherConfig& matcher_config,
                 uint64_t weight_seed)
    : config_(matcher_config), rng_(matcher_config.seed) {
  model_ = std::make_unique<tplm::TplmModel>("matcher_tplm", config, weight_seed);
  util::Rng head_rng(weight_seed ^ 0x9e3779b97f4a7c15ULL);
  const size_t d = config.transformer.dim;
  head_dense_ = std::make_unique<nn::Linear>("matcher_head.dense",
                                             model_->pair_feature_dim(), d, head_rng);
  head_out_ = std::make_unique<nn::Linear>("matcher_head.out", d, 1, head_rng);
}

void Matcher::ResetFromPretrained(tplm::TplmModel& pretrained) {
  model_->CopyWeightsFrom(pretrained);
  util::Rng head_rng(config_.seed ^ 0xabcdefULL);
  const size_t d = model_->config().transformer.dim;
  head_dense_ = std::make_unique<nn::Linear>("matcher_head.dense",
                                             model_->pair_feature_dim(), d, head_rng);
  head_out_ = std::make_unique<nn::Linear>("matcher_head.out", d, 1, head_rng);
}

double Matcher::Train(PairEncodingCache& pairs,
                      const std::vector<data::LabeledPair>& labeled_input,
                      const std::vector<data::PairId>& presumed_negatives) {
  DIAL_CHECK(!labeled_input.empty());
  std::vector<data::LabeledPair> labeled = labeled_input;
  for (const data::PairId& pair : presumed_negatives) {
    labeled.push_back({pair, false});
  }
  if (config_.random_negative_fraction > 0) {
    // Presumed-negative random pairs for calibration (see MatcherConfig).
    std::unordered_set<uint64_t> known;
    for (const auto& lp : labeled_input) known.insert(lp.pair.Key());
    const auto* bundle = pairs.bundle();
    const auto want = static_cast<size_t>(config_.random_negative_fraction *
                                          static_cast<double>(labeled_input.size()));
    size_t added = 0;
    for (size_t tries = 0; tries < want * 10 && added < want; ++tries) {
      const data::PairId pair{
          static_cast<uint32_t>(rng_.UniformInt(bundle->r_table.size())),
          static_cast<uint32_t>(rng_.UniformInt(bundle->s_table.size()))};
      if (!known.insert(pair.Key()).second) continue;
      labeled.push_back({pair, false});
      ++added;
    }
  }
  if (config_.balance_classes) {
    size_t pos = 0;
    for (const auto& lp : labeled) pos += lp.is_duplicate ? 1 : 0;
    const size_t neg = labeled.size() - pos;
    if (pos > 0 && neg > 0) {
      const bool minority_is_pos = pos < neg;
      const size_t minority = minority_is_pos ? pos : neg;
      const size_t majority = labeled.size() - minority;
      // Duplicate minority examples until majority <= ratio * minority.
      const auto target_minority = static_cast<size_t>(
          static_cast<double>(majority) / std::max(1.0, config_.max_class_ratio));
      std::vector<data::LabeledPair> extra;
      size_t need = target_minority > minority ? target_minority - minority : 0;
      while (need > 0) {
        for (const auto& lp : labeled_input) {
          if (need == 0) break;
          if (lp.is_duplicate == minority_is_pos) {
            extra.push_back(lp);
            --need;
          }
        }
      }
      labeled.insert(labeled.end(), extra.begin(), extra.end());
    }
  }
  std::vector<autograd::ParamGroup> groups;
  std::vector<autograd::Parameter*> head_params = head_dense_->Parameters();
  for (autograd::Parameter* p : head_out_->Parameters()) head_params.push_back(p);
  groups.push_back({head_params, config_.lr_head});
  if (!config_.freeze_transformer) {
    groups.push_back({model_->Parameters(), config_.lr_transformer});
  }
  autograd::AdamW optimizer(std::move(groups));
  const size_t steps_per_epoch =
      (labeled.size() + config_.batch_size - 1) / config_.batch_size;
  autograd::LinearSchedule schedule(
      static_cast<int64_t>(steps_per_epoch * config_.epochs));

  std::vector<size_t> order(labeled.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double last_epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t begin = 0; begin < order.size(); begin += config_.batch_size) {
      const size_t end = std::min(order.size(), begin + config_.batch_size);
      autograd::Tape tape;
      tape.SetThreadPool(pool_);
      nn::ForwardContext ctx{&tape, &rng_, /*training=*/true};
      std::vector<Var> logits;
      std::vector<float> targets;
      for (size_t i = begin; i < end; ++i) {
        const auto& lp = labeled[order[i]];
        const text::EncodedSequence& original = pairs.Get(lp.pair);
        text::EncodedSequence augmented;
        const text::EncodedSequence& seq =
            config_.augment_prob > 0 && rng_.Bernoulli(config_.augment_prob)
                ? (augmented = AugmentPair(original), augmented)
                : original;
        Var cls = model_->EncodePairFeatures(ctx, seq);
        Var h = autograd::Dropout(cls, config_.dropout, rng_, true);
        h = autograd::Tanh(head_dense_->Forward(ctx, h));
        h = autograd::Dropout(h, config_.dropout, rng_, true);
        logits.push_back(head_out_->Forward(ctx, h));
        targets.push_back(lp.is_duplicate ? 1.0f : 0.0f);
      }
      Var batch_logits = autograd::ConcatRows(logits);
      Var loss = autograd::BceWithLogits(batch_logits, targets);
      optimizer.ZeroGrad();
      tape.Backward(loss);
      optimizer.Step(schedule.Multiplier(optimizer.steps_taken()));
      epoch_loss += loss.scalar();
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
    if (config_.early_stop_loss > 0 && last_epoch_loss < config_.early_stop_loss) {
      break;
    }
  }
  return last_epoch_loss;
}

text::EncodedSequence Matcher::AugmentPair(const text::EncodedSequence& seq) {
  text::EncodedSequence out;
  out.ids.reserve(seq.ids.size());
  out.segments.reserve(seq.segments.size());
  for (size_t i = 0; i < seq.ids.size(); ++i) {
    const bool special = seq.ids[i] < text::SpecialIds::kCount;
    if (!special && rng_.Bernoulli(config_.augment_drop_prob)) continue;
    out.ids.push_back(seq.ids[i]);
    out.segments.push_back(seq.segments[i]);
  }
  // Swap adjacent non-special pieces within the same segment.
  for (size_t i = 0; i + 1 < out.ids.size(); ++i) {
    if (out.ids[i] < text::SpecialIds::kCount ||
        out.ids[i + 1] < text::SpecialIds::kCount ||
        out.segments[i] != out.segments[i + 1]) {
      continue;
    }
    if (rng_.Bernoulli(config_.augment_swap_prob)) {
      std::swap(out.ids[i], out.ids[i + 1]);
    }
  }
  return out;
}

float Matcher::ForwardProb(const text::EncodedSequence& seq, la::Matrix* penultimate) {
  autograd::Tape tape;
  tape.SetThreadPool(pool_);
  nn::ForwardContext ctx{&tape, &rng_, /*training=*/false};
  Var cls = model_->EncodePairFeatures(ctx, seq);
  Var h = autograd::Tanh(head_dense_->Forward(ctx, cls));
  Var logit = head_out_->Forward(ctx, h);
  if (penultimate != nullptr) *penultimate = h.value();
  return 1.0f / (1.0f + std::exp(-logit.value()(0, 0)));
}

std::vector<const text::EncodedSequence*> Matcher::GatherPairSeqs(
    PairEncodingCache& pairs, const std::vector<data::PairId>& query) {
  std::vector<const text::EncodedSequence*> seqs;
  seqs.reserve(query.size());
  // Serial gather: the cache lazily encodes on miss. References stay valid
  // (node-based map) while the engine runs over them.
  for (const data::PairId& pair : query) seqs.push_back(&pairs.Get(pair));
  return seqs;
}

void Matcher::InferHeadBatchWith(autograd::InferenceContext& ctx,
                                 const std::vector<const text::EncodedSequence*>& seqs,
                                 la::Matrix* h_out, std::vector<float>* probs) const {
  const la::Matrix features = model_->EncodePairFeaturesBatch(ctx, seqs);
  autograd::Scratch h = head_dense_->InferForward(ctx, features);
  autograd::infer::TanhInPlace(*h);
  if (probs != nullptr) {
    autograd::Scratch logits = head_out_->InferForward(ctx, *h);
    probs->resize(seqs.size());
    for (size_t i = 0; i < seqs.size(); ++i) {
      (*probs)[i] = 1.0f / (1.0f + std::exp(-(*logits)(i, 0)));
    }
  }
  if (h_out != nullptr) *h_out = *h;
}

void Matcher::InferHeadBatch(const std::vector<const text::EncodedSequence*>& seqs,
                             la::Matrix* h_out, std::vector<float>* probs) {
  InferHeadBatchWith(infer_ctx_, seqs, h_out, probs);
}

std::vector<float> Matcher::PredictProbsWith(
    autograd::InferenceContext& ctx,
    const std::vector<const text::EncodedSequence*>& seqs) const {
  std::vector<float> probs(seqs.size());
  if (seqs.empty()) return probs;
  InferHeadBatchWith(ctx, seqs, nullptr, &probs);
  return probs;
}

la::Matrix Matcher::EmbedSingleModeWith(
    autograd::InferenceContext& ctx,
    const std::vector<const text::EncodedSequence*>& seqs) const {
  la::Matrix out = model_->EncodeSingleBatch(ctx, seqs);
  la::NormalizeRowsInPlace(out);
  return out;
}

void Matcher::SaveWeights(util::BinaryWriter& writer) {
  model_->Save(writer);
  head_dense_->Save(writer);
  head_out_->Save(writer);
}

util::Status Matcher::LoadWeights(util::BinaryReader& reader) {
  DIAL_RETURN_IF_ERROR(model_->Load(reader));
  DIAL_RETURN_IF_ERROR(head_dense_->Load(reader));
  return head_out_->Load(reader);
}

std::vector<float> Matcher::PredictProbs(PairEncodingCache& pairs,
                                         const std::vector<data::PairId>& query) {
  std::vector<float> probs(query.size());
  if (query.empty()) return probs;
  if (use_inference_) {
    InferHeadBatch(GatherPairSeqs(pairs, query), nullptr, &probs);
    return probs;
  }
  for (size_t i = 0; i < query.size(); ++i) {
    probs[i] = ForwardProb(pairs.Get(query[i]), nullptr);
  }
  return probs;
}

la::Matrix Matcher::BadgeEmbeddings(PairEncodingCache& pairs,
                                    const std::vector<data::PairId>& query) {
  const size_t d = model_->config().transformer.dim;
  la::Matrix out(query.size(), d + 1);
  if (use_inference_) {
    la::Matrix h;
    std::vector<float> probs;
    InferHeadBatch(GatherPairSeqs(pairs, query), &h, &probs);
    for (size_t i = 0; i < query.size(); ++i) {
      const float p = probs[i];
      const float y_hat = p > 0.5f ? 1.0f : 0.0f;
      const float g = p - y_hat;
      float* row = out.row(i);
      for (size_t c = 0; c < d; ++c) row[c] = g * h(i, c);
      row[d] = g;  // bias column
    }
    return out;
  }
  for (size_t i = 0; i < query.size(); ++i) {
    la::Matrix h;
    const float p = ForwardProb(pairs.Get(query[i]), &h);
    const float y_hat = p > 0.5f ? 1.0f : 0.0f;
    // d/dlogit of BCE with the hallucinated label.
    const float g = p - y_hat;
    float* row = out.row(i);
    for (size_t c = 0; c < d; ++c) row[c] = g * h(0, c);
    row[d] = g;  // bias column
  }
  return out;
}

la::Matrix Matcher::PairRepresentations(PairEncodingCache& pairs,
                                        const std::vector<data::PairId>& query) {
  const size_t d = model_->config().transformer.dim;
  if (use_inference_) {
    la::Matrix h;
    InferHeadBatch(GatherPairSeqs(pairs, query), &h, nullptr);
    return h;
  }
  la::Matrix out(query.size(), d);
  for (size_t i = 0; i < query.size(); ++i) {
    la::Matrix h;
    ForwardProb(pairs.Get(query[i]), &h);
    std::copy(h.row(0), h.row(0) + d, out.row(i));
  }
  return out;
}

la::Matrix Matcher::EmbedSingleMode(
    const std::vector<const text::EncodedSequence*>& seqs) {
  const size_t d = model_->config().transformer.dim;
  if (use_inference_) {
    return EmbedSingleModeWith(infer_ctx_, seqs);
  }
  la::Matrix out(seqs.size(), d);
  for (size_t i = 0; i < seqs.size(); ++i) {
    autograd::Tape tape;
    tape.SetThreadPool(pool_);
    nn::ForwardContext ctx{&tape, &rng_, /*training=*/false};
    Var emb = model_->EncodeSingle(ctx, *seqs[i]);
    std::copy(emb.value().row(0), emb.value().row(0) + d, out.row(i));
  }
  // Unit-normalized embeddings: L2 retrieval over them equals scaled-cosine
  // retrieval, which is markedly better for mean-pooled record embeddings
  // (record-length effects cancel).
  la::NormalizeRowsInPlace(out);
  return out;
}

}  // namespace dial::core
