#include "core/checkpoint.h"

#include <cstdio>

#include "util/hash.h"
#include "util/serialize.h"

namespace dial::core {

namespace {

constexpr uint32_t kCheckpointMagic = 0x4441'4c43;  // "DALC"
// v2: RoundMetrics gained t_index_build/index_warm_members and the file
// gained the IbcIndexCache warm-state section (index-refresh lifecycle).
// v3: RoundMetrics gained t_predict/t_embed (inference-engine breakdown).
// v4: CRC32C trailer (whole-file, verified before parsing); payload layout
// unchanged. v3 files still load — unverified, the pre-CRC contract.
constexpr uint32_t kCheckpointVersion = 4;
constexpr uint32_t kCheckpointMinVersion = 3;
constexpr uint32_t kCheckpointCrcFromVersion = 4;

void WritePair(util::BinaryWriter& w, const data::PairId& pair) {
  w.WriteU32(pair.r);
  w.WriteU32(pair.s);
}

data::PairId ReadPair(util::BinaryReader& r) {
  data::PairId pair;
  pair.r = r.ReadU32();
  pair.s = r.ReadU32();
  return pair;
}

void WriteEntries(util::BinaryWriter& w,
                  const std::vector<data::LabeledSet::Entry>& entries) {
  w.WriteU64(entries.size());
  for (const auto& e : entries) {
    WritePair(w, e.pair);
    w.WriteU32(e.pseudo ? 1 : 0);
  }
}

util::Status ReadEntries(util::BinaryReader& r,
                         std::vector<data::LabeledSet::Entry>* entries) {
  const uint64_t n = r.ReadU64();
  if (!r.status().ok()) return r.status();
  // 12 wire bytes per entry; bounding against the actual file size keeps a
  // corrupted count from reserving gigabytes before the reads start failing.
  if (n > (1u << 26) || n * 12 > r.RemainingBytes()) {
    return util::Status::Corruption("entry count too large");
  }
  entries->clear();
  entries->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    data::LabeledSet::Entry e;
    e.pair = ReadPair(r);
    e.pseudo = r.ReadU32() != 0;
    entries->push_back(e);
  }
  return r.status();
}

void WritePrf(util::BinaryWriter& w, const Prf& prf) {
  w.WriteF64(prf.precision);
  w.WriteF64(prf.recall);
  w.WriteF64(prf.f1);
  w.WriteU64(prf.true_positives);
  w.WriteU64(prf.predicted_positives);
  w.WriteU64(prf.actual_positives);
}

Prf ReadPrf(util::BinaryReader& r) {
  Prf prf;
  prf.precision = r.ReadF64();
  prf.recall = r.ReadF64();
  prf.f1 = r.ReadF64();
  prf.true_positives = r.ReadU64();
  prf.predicted_positives = r.ReadU64();
  prf.actual_positives = r.ReadU64();
  return prf;
}

void WriteRound(util::BinaryWriter& w, const RoundMetrics& m) {
  w.WriteU64(m.round);
  w.WriteU64(m.labels_in_t);
  w.WriteU64(m.positives_in_t);
  w.WriteU64(m.negatives_in_t);
  w.WriteU64(m.cand_size);
  w.WriteF64(m.cand_recall);
  WritePrf(w, m.test_prf);
  WritePrf(w, m.allpairs_prf);
  w.WriteF64(m.t_train_matcher);
  w.WriteF64(m.t_train_committee);
  w.WriteF64(m.t_index_retrieve);
  w.WriteF64(m.t_select);
  w.WriteF64(m.t_predict);
  w.WriteF64(m.t_embed);
  w.WriteF64(m.t_index_build);
  w.WriteU64(m.index_warm_members);
}

RoundMetrics ReadRound(util::BinaryReader& r) {
  RoundMetrics m;
  m.round = r.ReadU64();
  m.labels_in_t = r.ReadU64();
  m.positives_in_t = r.ReadU64();
  m.negatives_in_t = r.ReadU64();
  m.cand_size = r.ReadU64();
  m.cand_recall = r.ReadF64();
  m.test_prf = ReadPrf(r);
  m.allpairs_prf = ReadPrf(r);
  m.t_train_matcher = r.ReadF64();
  m.t_train_committee = r.ReadF64();
  m.t_index_retrieve = r.ReadF64();
  m.t_select = r.ReadF64();
  m.t_predict = r.ReadF64();
  m.t_embed = r.ReadF64();
  m.t_index_build = r.ReadF64();
  m.index_warm_members = r.ReadU64();
  return m;
}

}  // namespace

uint64_t AlConfigFingerprint(const AlConfig& config, const std::string& dataset) {
  uint64_t h = util::Fnv1a(dataset);
  // `rounds` is deliberately NOT hashed: extending a finished labeling
  // budget ("run 5 more rounds") is the main reason to resume, and the
  // total round count never changes per-round behaviour — only when the
  // loop stops.
  h = util::HashCombine(h, config.budget_per_round);
  h = util::HashCombine(h, config.seed_per_class);
  h = util::HashCombine(h, static_cast<uint64_t>(config.cand_multiplier * 1e6));
  h = util::HashCombine(h, config.cand_size_override);
  h = util::HashCombine(h, config.k_neighbors);
  h = util::HashCombine(h, static_cast<uint64_t>(config.index_backend));
  h = util::HashCombine(h, static_cast<uint64_t>(config.selector));
  h = util::HashCombine(h, static_cast<uint64_t>(config.blocking));
  h = util::HashCombine(h, config.qbc_committee_size);
  h = util::HashCombine(h, config.calibration_pairs);
  // Warm-start refresh changes retrieval on the approximate backends, so a
  // run checkpointed with one lifecycle setting must not resume under
  // another (num_threads, by contrast, stays excluded: bit-identical).
  h = util::HashCombine(h, config.index_refresh ? 1u : 0u);
  h = util::HashCombine(h, config.refresh.warm_start ? 1u : 0u);
  h = util::HashCombine(h, config.refresh.warm_iterations);
  // Quantized inference changes pool scores (not bit-identical like the
  // engine on/off toggle), so it must fence resumes — but only hash a
  // non-default value, so every fingerprint minted before the knob existed
  // (implicitly fp32) stays resumable.
  if (config.inference_precision != "fp32") {
    h = util::HashCombine(h, util::Fnv1a(config.inference_precision));
  }
  // Negative knob values all mean "disabled"; clamp before the float->int
  // cast (negative-to-unsigned float conversion is UB, and every disabled
  // value should fingerprint identically anyway).
  const auto knob = [](double v) {
    return v > 0.0 ? static_cast<uint64_t>(v * 1e6) : uint64_t{0};
  };
  h = util::HashCombine(h, knob(config.refresh.drift_threshold));
  h = util::HashCombine(h, knob(config.refresh.max_stale_bits));
  h = util::HashCombine(h, config.seed);
  h = util::HashCombine(h, config.matcher.seed);
  h = util::HashCombine(h, config.blocker.seed);
  return h;
}

util::Status SaveAlCheckpoint(const std::string& path,
                              const AlCheckpoint& checkpoint,
                              const IbcIndexCache* index_cache) {
  const std::string tmp = path + ".tmp";
  {
    util::BinaryWriter w(tmp, kCheckpointMagic, kCheckpointVersion,
                         /*with_crc=*/true);
    w.WriteString(checkpoint.dataset_name);
    w.WriteU64(checkpoint.config_fingerprint);
    w.WriteU32(checkpoint.next_round);
    w.WriteU64(checkpoint.labels_used);
    for (const uint64_t s : checkpoint.rng_state.s) w.WriteU64(s);
    w.WriteU32(checkpoint.rng_state.have_spare ? 1 : 0);
    w.WriteF64(checkpoint.rng_state.spare);
    WriteEntries(w, checkpoint.positives);
    WriteEntries(w, checkpoint.negatives);
    w.WriteU64(checkpoint.calibration.size());
    for (const auto& pair : checkpoint.calibration) WritePair(w, pair);
    w.WriteU64(checkpoint.rounds.size());
    for (const auto& round : checkpoint.rounds) WriteRound(w, round);
    if (index_cache != nullptr) {
      index_cache->SaveWarmState(w);
    } else {
      w.WriteU64(0);  // empty cache section
    }
    // Durable finish = fsync the temp file's contents before the rename:
    // once the rename lands, the name can only ever point at complete bytes.
    const util::Status finish = w.Finish(/*durable=*/true);
    if (!finish.ok()) {
      std::remove(tmp.c_str());  // no stale .tmp litter on failed saves
      return finish;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IoError("rename to " + path + " failed");
  }
  // And fsync the directory after the rename, making the *entry* durable —
  // file-fsync + rename alone can still lose the new name on power cut.
  DIAL_RETURN_IF_ERROR(util::SyncParentDir(path));
  return util::Status::OK();
}

util::Status LoadAlCheckpoint(const std::string& path, AlCheckpoint* checkpoint,
                              IbcIndexCache* index_cache) {
  DIAL_CHECK(checkpoint != nullptr);
  util::BinaryReader r(path, kCheckpointMagic, kCheckpointMinVersion,
                       kCheckpointVersion, kCheckpointCrcFromVersion);
  DIAL_RETURN_IF_ERROR(r.status());
  checkpoint->dataset_name = r.ReadString();
  checkpoint->config_fingerprint = r.ReadU64();
  checkpoint->next_round = r.ReadU32();
  checkpoint->labels_used = r.ReadU64();
  for (uint64_t& s : checkpoint->rng_state.s) s = r.ReadU64();
  checkpoint->rng_state.have_spare = r.ReadU32() != 0;
  checkpoint->rng_state.spare = r.ReadF64();
  DIAL_RETURN_IF_ERROR(ReadEntries(r, &checkpoint->positives));
  DIAL_RETURN_IF_ERROR(ReadEntries(r, &checkpoint->negatives));
  const uint64_t n_cal = r.ReadU64();
  DIAL_RETURN_IF_ERROR(r.status());
  if (n_cal > (1u << 26) || n_cal * 8 > r.RemainingBytes()) {
    return util::Status::Corruption("calibration too large");
  }
  checkpoint->calibration.clear();
  for (uint64_t i = 0; i < n_cal; ++i) checkpoint->calibration.push_back(ReadPair(r));
  const uint64_t n_rounds = r.ReadU64();
  DIAL_RETURN_IF_ERROR(r.status());
  if (n_rounds > (1u << 20) || n_rounds * 8 > r.RemainingBytes()) {
    return util::Status::Corruption("round count too large");
  }
  checkpoint->rounds.clear();
  for (uint64_t i = 0; i < n_rounds; ++i) checkpoint->rounds.push_back(ReadRound(r));
  DIAL_RETURN_IF_ERROR(r.status());
  // The cache section is always present (possibly empty); parse it even when
  // the caller does not want it so trailing corruption is still detected.
  IbcIndexCache scratch;
  IbcIndexCache* cache = index_cache != nullptr ? index_cache : &scratch;
  DIAL_RETURN_IF_ERROR(cache->LoadWarmState(r));
  return r.status();
}

util::StatusOr<AlCheckpoint> LoadAlCheckpoint(const std::string& path) {
  AlCheckpoint checkpoint;
  util::Status status = LoadAlCheckpoint(path, &checkpoint);
  if (!status.ok()) return status;
  return checkpoint;
}

}  // namespace dial::core
