#ifndef DIAL_CORE_SBERT_H_
#define DIAL_CORE_SBERT_H_

#include <memory>
#include <vector>

#include "autograd/inference.h"
#include "core/encodings.h"
#include "nn/layers.h"
#include "tplm/tplm.h"

/// \file
/// The SentenceBERT blocking baseline (Sec. 4.3): a separate copy of the
/// TPLM fine-tuned *in single mode* on the labeled pairs T with a classifier
/// over [u ; v ; |u - v|] — i.e. DITTO's "advanced blocking", run inside the
/// AL loop. Its embeddings feed a plain kNN retrieval.

namespace dial::core {

struct SbertConfig {
  size_t epochs = 4;
  size_t batch_size = 8;
  float lr_transformer = 2e-4f;
  float lr_head = 1e-3f;
  uint64_t seed = 303;
};

class SentenceBertBlocker {
 public:
  SentenceBertBlocker(const tplm::TplmConfig& config, const SbertConfig& sbert_config,
                      uint64_t weight_seed);

  /// Restores pretrained transformer weights and a fresh head.
  void ResetFromPretrained(tplm::TplmModel& pretrained, uint64_t salt);

  /// Fine-tunes on labeled pairs (positives and the labeled negatives of T —
  /// the paper shows this, among other choices, is why its recall lags DIAL).
  /// Returns final-epoch mean loss.
  double Train(const RecordEncodings& encodings,
               const std::vector<data::LabeledPair>& labeled);

  /// Embeds all of R (or S) with the fine-tuned transformer.
  la::Matrix EmbedR(const RecordEncodings& encodings);
  la::Matrix EmbedS(const RecordEncodings& encodings);

  tplm::TplmModel& model() { return *model_; }

  /// Unowned pool threaded through this blocker's tapes (see Matcher).
  void SetThreadPool(util::ThreadPool* pool) {
    pool_ = pool;
    infer_ctx_.SetThreadPool(pool);
  }

  /// Tape-free batched embedding (default on); `false` reverts to the
  /// one-sequence-per-Tape path. Bit-identical either way; training always
  /// uses the Tape.
  void SetInferenceEngine(bool on) { use_inference_ = on; }

  /// Numeric mode for the engine's linear sublayers (default fp32; see
  /// Matcher::SetInferencePrecision).
  void SetInferencePrecision(autograd::Precision precision) {
    infer_ctx_.SetPrecision(precision);
  }

 private:
  la::Matrix Embed(const std::vector<const text::EncodedSequence*>& seqs);

  SbertConfig config_;
  std::unique_ptr<tplm::TplmModel> model_;
  std::unique_ptr<nn::SentencePairHead> head_;
  util::Rng rng_;
  util::ThreadPool* pool_ = nullptr;  // unowned; null = inline GEMMs
  autograd::InferenceContext infer_ctx_;  // tape-free activation arena
  bool use_inference_ = true;
};

}  // namespace dial::core

#endif  // DIAL_CORE_SBERT_H_
