#ifndef DIAL_CORE_IBC_H_
#define DIAL_CORE_IBC_H_

#include <string>
#include <vector>

#include "core/committee.h"
#include "index/vector_index.h"
#include "util/thread_pool.h"

/// \file
/// Index-By-Committee (Alg. 1 lines 9–25): every committee member indexes
/// its embeddings of R, probes with its embeddings of S, and the closest
/// pairs across all members form the candidate set `cand`.

namespace dial::core {

/// One retrieved pair with its best (minimum over members) distance.
struct Candidate {
  data::PairId pair;
  float distance = 0.0f;
};

enum class IndexBackend {
  kFlat,    // exact brute force (faiss::IndexFlat)
  kIvf,     // inverted file, flat residuals (faiss::IndexIVFFlat)
  kLsh,     // random hyperplanes (DeepER/AutoBlock retrieval)
  kPq,      // exhaustive ADC over PQ codes (faiss::IndexPQ)
  kIvfPq,   // IVF + residual PQ (faiss::IndexIVFPQ)
  kSq,      // 8-bit scalar quantization (faiss::IndexScalarQuantizer)
  kHnsw,    // navigable small-world graph (faiss::IndexHNSW)
  kMatmul,  // exact, blocked-GEMM scoring (DITTO / Abuzaid et al. [1])
};

IndexBackend ParseIndexBackend(const std::string& text);
std::string IndexBackendName(IndexBackend backend);

/// All backends, in enum order (used by the backend-ablation bench/tests).
std::vector<IndexBackend> AllIndexBackends();

struct IbcConfig {
  /// k nearest neighbours per member per probe (paper: 3; 20 for Abt-Buy).
  size_t k_neighbors = 3;
  /// Final |cand| (closest pairs kept after the cross-member merge).
  size_t cand_size = 0;  // 0 = keep every retrieved pair
  IndexBackend backend = IndexBackend::kFlat;
  index::Metric metric = index::Metric::kL2;
};

/// Runs IBC: returns candidates sorted by ascending distance, truncated to
/// cand_size. `emb_r`/`emb_s` are the frozen single-mode embeddings E(x).
std::vector<Candidate> IndexByCommittee(BlockerCommittee& committee,
                                        const la::Matrix& emb_r,
                                        const la::Matrix& emb_s,
                                        const IbcConfig& config,
                                        util::ThreadPool* pool = nullptr);

/// Direct kNN over raw embeddings (no committee) — the retrieval used by
/// the PairedFixed / PairedAdapt / SentenceBERT baselines.
std::vector<Candidate> DirectKnnCandidates(const la::Matrix& emb_r,
                                           const la::Matrix& emb_s,
                                           const IbcConfig& config,
                                           util::ThreadPool* pool = nullptr);

/// Extracts just the pairs.
std::vector<data::PairId> CandidatePairs(const std::vector<Candidate>& cand);

}  // namespace dial::core

#endif  // DIAL_CORE_IBC_H_
