#ifndef DIAL_CORE_IBC_H_
#define DIAL_CORE_IBC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/committee.h"
#include "index/vector_index.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

/// \file
/// Index-By-Committee (Alg. 1 lines 9–25): every committee member indexes
/// its embeddings of R, probes with its embeddings of S, and the closest
/// pairs across all members form the candidate set `cand`.
///
/// Across AL rounds the member embeddings drift slowly, so the per-member
/// indexes need not be reconstructed from scratch every round: a caller that
/// keeps an `IbcIndexCache` alive gets warm-start `VectorIndex::Refresh`
/// (trained centroids/codebooks/planes reused) from round 2 on — the
/// dominant per-round retrieval cost in the paper's Table 9 breakdown.

namespace dial::core {

/// One retrieved pair with its best (minimum over members) distance.
struct Candidate {
  data::PairId pair;
  float distance = 0.0f;
};

enum class IndexBackend {
  kFlat,    // exact brute force (faiss::IndexFlat)
  kIvf,     // inverted file, flat residuals (faiss::IndexIVFFlat)
  kLsh,     // random hyperplanes (DeepER/AutoBlock retrieval)
  kPq,      // exhaustive ADC over PQ codes (faiss::IndexPQ)
  kIvfPq,   // IVF + residual PQ (faiss::IndexIVFPQ)
  kSq,      // 8-bit scalar quantization (faiss::IndexScalarQuantizer)
  kHnsw,    // navigable small-world graph (faiss::IndexHNSW)
  kMatmul,  // exact, blocked-GEMM scoring (DITTO / Abuzaid et al. [1])
};

IndexBackend ParseIndexBackend(const std::string& text);
std::string IndexBackendName(IndexBackend backend);

/// All backends, in enum order (used by the backend-ablation bench/tests).
std::vector<IndexBackend> AllIndexBackends();

struct IbcConfig {
  /// k nearest neighbours per member per probe (paper: 3; 20 for Abt-Buy).
  size_t k_neighbors = 3;
  /// Final |cand| (closest pairs kept after the cross-member merge).
  size_t cand_size = 0;  // 0 = keep every retrieved pair
  IndexBackend backend = IndexBackend::kFlat;
  index::Metric metric = index::Metric::kL2;
  /// Warm-start knobs applied when an IbcIndexCache is passed in.
  index::RefreshOptions refresh;
};

/// Persistent per-member (or, for DirectKnnCandidates, single) indexes that
/// survive across retrieval calls. First use cold-builds; every later call
/// with a compatible configuration Refresh()es instead. A configuration
/// change (backend/metric/dim/member count) silently drops the cache and
/// cold-builds again.
struct IbcIndexCache {
  IndexBackend backend = IndexBackend::kFlat;
  index::Metric metric = index::Metric::kL2;
  size_t dim = 0;
  std::vector<std::unique_ptr<index::VectorIndex>> members;

  bool empty() const { return members.empty(); }
  void Reset();
  /// True when the cached indexes can be Refresh()ed for this configuration.
  bool Compatible(IndexBackend backend_in, index::Metric metric_in,
                  size_t dim_in, size_t member_count) const;

  /// Serializes the members' warm-startable structure (backend-tagged, for
  /// AL checkpoints). Load recreates the indexes and restores their state;
  /// non-OK on malformed payloads.
  void SaveWarmState(util::BinaryWriter& writer) const;
  util::Status LoadWarmState(util::BinaryReader& reader);
};

/// What one retrieval call did to its indexes (Table 9 instrumentation).
struct IbcStats {
  /// Seconds spent building or refreshing the member indexes, summed across
  /// members (wall time per member, so with a pool the sum can exceed the
  /// elapsed wall clock).
  double index_build_seconds = 0.0;
  /// Members that reused trained structure (VectorIndex::RefreshStats::warm).
  size_t warm_members = 0;
  /// Members whose drift check forced a retrain.
  size_t retrained_members = 0;
};

/// Runs IBC: returns candidates sorted by ascending distance, truncated to
/// cand_size. `emb_r`/`emb_s` are the frozen single-mode embeddings E(x).
/// `cache` (optional) enables warm-start index reuse across calls; `stats`
/// (optional) reports build-vs-refresh cost either way.
std::vector<Candidate> IndexByCommittee(BlockerCommittee& committee,
                                        const la::Matrix& emb_r,
                                        const la::Matrix& emb_s,
                                        const IbcConfig& config,
                                        util::ThreadPool* pool = nullptr,
                                        IbcIndexCache* cache = nullptr,
                                        IbcStats* stats = nullptr);

/// Direct kNN over raw embeddings (no committee) — the retrieval used by
/// the PairedFixed / PairedAdapt / SentenceBERT baselines. `cache` reuses a
/// single index slot across calls, mirroring IndexByCommittee.
std::vector<Candidate> DirectKnnCandidates(const la::Matrix& emb_r,
                                           const la::Matrix& emb_s,
                                           const IbcConfig& config,
                                           util::ThreadPool* pool = nullptr,
                                           IbcIndexCache* cache = nullptr,
                                           IbcStats* stats = nullptr);

/// Extracts just the pairs.
std::vector<data::PairId> CandidatePairs(const std::vector<Candidate>& cand);

/// Constructs a backend index with the exact per-backend options IBC uses
/// (PQ subspace fitting etc.). Exposed for the serving layer, which builds
/// per-member indexes once at bundle-load time and probes them per request.
std::unique_ptr<index::VectorIndex> MakeIbcIndex(IndexBackend backend, size_t dim,
                                                 index::Metric metric,
                                                 util::ThreadPool* pool = nullptr);

}  // namespace dial::core

#endif  // DIAL_CORE_IBC_H_
