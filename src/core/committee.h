#ifndef DIAL_CORE_COMMITTEE_H_
#define DIAL_CORE_COMMITTEE_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/inference.h"
#include "data/dataset.h"
#include "nn/layers.h"
#include "util/serialize.h"

/// \file
/// The DIAL blocker (Sec. 3.2): a committee of N lightweight embedding heads
/// over the frozen matcher-trained transformer's single-mode embeddings.
/// Member k applies a fixed random 0/1 mask M_k (keep prob p — the random-
/// forest-inspired feature subsampling) followed by a learned affine map and
/// tanh (Eq. 7). Members train independently on labeled duplicates versus
/// negatives with one of three objectives (contrastive Eq. 8 by default) —
/// the Table 4/5 ablation axes are both config switches here.

namespace dial::core {

enum class BlockerObjective {
  kContrastive,     // Eq. 8 (default)
  kTriplet,         // Sec. 4.6.2, margin loss, no hard negative mining
  kClassification,  // SentenceBERT-style BCE
};

enum class NegativeSource {
  kRandom,   // random record pairs (Sec. 3.2.2, the paper's key choice)
  kLabeled,  // the hard negatives T_n collected by AL (Table 4 ablation)
};

BlockerObjective ParseObjective(const std::string& text);
std::string ObjectiveName(BlockerObjective objective);
std::string NegativeSourceName(NegativeSource source);

struct BlockerConfig {
  size_t committee_size = 3;
  /// Keep probability p of the random mask M_k (paper default 0.5).
  double mask_keep_prob = 0.8;
  /// The committee trains 10x the matcher's epochs in the paper (200 vs 20);
  /// same ratio here at smaller absolute counts.
  size_t epochs = 80;
  size_t batch_size = 8;
  float lr = 1e-3f;
  BlockerObjective objective = BlockerObjective::kContrastive;
  NegativeSource negatives = NegativeSource::kRandom;
  float triplet_margin = 1.0f;
  /// L2-normalize member outputs (training and retrieval see the same
  /// metric): squared L2 on normalized vectors == scaled cosine, the
  /// alternative similarity Sec. 3.2.3 sanctions.
  bool normalize_output = true;
  /// Temperature on squared distances inside the contrastive softmax; on
  /// normalized outputs distances live in [0,4], so a >1 temperature
  /// sharpens the objective.
  float distance_scale = 4.0f;
  uint64_t seed = 202;
};

/// One committee member: E_k(x) = tanh(U_k(M_k ⊙ E(x), 1)), optionally
/// L2-normalized.
class CommitteeMember : public nn::Module {
 public:
  CommitteeMember(std::string name, size_t dim, double mask_keep_prob,
                  bool normalize_output, util::Rng& rng);

  /// Differentiable transform of a batch of frozen embeddings (m, d) -> (m, d).
  autograd::Var Forward(nn::ForwardContext& ctx, autograd::Var embeddings);

  /// Inference-only batch transform (tape-free engine by default; see
  /// SetInferenceEngine).
  la::Matrix Transform(const la::Matrix& embeddings);

  /// Tape-free Transform through an *external* context: const, so serving
  /// workers can encode through one shared member concurrently, each with
  /// its own InferenceContext. Bit-identical to Transform on the engine path.
  la::Matrix TransformWith(autograd::InferenceContext& ctx,
                           const la::Matrix& embeddings) const;

  /// Persists the member's full state: the fixed random mask (not an
  /// autograd Parameter, so Module::Save misses it) followed by the learned
  /// affine weights.
  void SaveState(util::BinaryWriter& writer);
  util::Status LoadState(util::BinaryReader& reader);

  const la::Matrix& mask() const { return mask_; }

  /// Unowned pool threaded through this member's tapes (see Matcher).
  void SetThreadPool(util::ThreadPool* pool) {
    pool_ = pool;
    infer_ctx_.SetThreadPool(pool);
  }
  util::ThreadPool* thread_pool() const { return pool_; }

  /// Tape-free Transform (default on); `false` reverts to the Tape forward.
  /// Bit-identical either way; training always uses the Tape.
  void SetInferenceEngine(bool on) { use_inference_ = on; }

  /// Numeric mode for the engine's linear sublayer (default fp32; see
  /// Matcher::SetInferencePrecision).
  void SetInferencePrecision(autograd::Precision precision) {
    infer_ctx_.SetPrecision(precision);
  }

 private:
  la::Matrix mask_;  // (1, d) of {0,1}
  nn::Linear linear_;
  bool normalize_output_;
  util::Rng scratch_rng_;  // dropout-free forward still needs a context rng
  util::ThreadPool* pool_ = nullptr;  // unowned; null = inline GEMMs
  autograd::InferenceContext infer_ctx_;  // tape-free activation arena
  bool use_inference_ = true;
};

/// The full blocker: N members + their training loop.
class BlockerCommittee {
 public:
  BlockerCommittee(size_t dim, const BlockerConfig& config);

  size_t size() const { return members_.size(); }
  CommitteeMember& member(size_t k) { return *members_[k]; }
  const CommitteeMember& member(size_t k) const { return *members_[k]; }
  const BlockerConfig& config() const { return config_; }
  size_t dim() const { return dim_; }

  /// Persists every member's state (masks + learned weights) in order. The
  /// serving loader reconstructs a committee with the same (dim, config)
  /// shape and overwrites its members from this. Classification heads are
  /// training-only state and are not saved.
  void SaveWeights(util::BinaryWriter& writer);
  util::Status LoadWeights(util::BinaryReader& reader);

  /// Trains every member on the frozen record embeddings. `emb_r`/`emb_s`
  /// hold E(x) for every record of R/S (row = record id). `dups` are T_p;
  /// `labeled_negatives` are T_n (used only under NegativeSource::kLabeled).
  /// Returns the mean final-epoch loss across members.
  double Train(const la::Matrix& emb_r, const la::Matrix& emb_s,
               const std::vector<data::PairId>& dups,
               const std::vector<data::PairId>& labeled_negatives);

  /// Member k's embeddings of a record-embedding matrix.
  la::Matrix Encode(size_t k, const la::Matrix& embeddings) {
    return members_[k]->Transform(embeddings);
  }

  /// Attaches an unowned pool to every member (training + Encode GEMMs).
  /// Nested use (e.g. IndexByCommittee already fanning members over the same
  /// pool) degrades to inline execution inside the workers, so this is
  /// always safe to set.
  void SetThreadPool(util::ThreadPool* pool) {
    for (auto& member : members_) member->SetThreadPool(pool);
  }

  /// Toggles every member's tape-free Transform path (see CommitteeMember).
  void SetInferenceEngine(bool on) {
    for (auto& member : members_) member->SetInferenceEngine(on);
  }

  /// Sets every member's engine precision (see CommitteeMember).
  void SetInferencePrecision(autograd::Precision precision) {
    for (auto& member : members_) member->SetInferencePrecision(precision);
  }

 private:
  double TrainMember(size_t k, const la::Matrix& emb_r, const la::Matrix& emb_s,
                     const std::vector<data::PairId>& dups,
                     const std::vector<data::PairId>& labeled_negatives,
                     util::Rng& rng);

  BlockerConfig config_;
  size_t dim_;
  std::vector<std::unique_ptr<CommitteeMember>> members_;
  /// Per-member classification heads (only for kClassification).
  std::vector<std::unique_ptr<nn::SentencePairHead>> heads_;
};

}  // namespace dial::core

#endif  // DIAL_CORE_COMMITTEE_H_
