#include "core/experiment.h"

#include "util/timer.h"

namespace dial::core {

Experiment PrepareExperiment(const std::string& dataset_name,
                             const ExperimentConfig& config) {
  Experiment exp;
  exp.bundle = data::MakeDataset(dataset_name, config.scale, config.data_seed);

  const std::vector<std::string> corpus = exp.bundle.CorpusLines();
  text::SubwordVocab::Options vocab_options;
  vocab_options.max_vocab = config.tplm.transformer.vocab_size;
  exp.vocab = text::SubwordVocab::Train(corpus, vocab_options);

  tplm::TplmConfig tplm_config = config.tplm;
  // The embedding table must cover the trained vocabulary; shrink to fit.
  tplm_config.transformer.vocab_size = exp.vocab.size();

  exp.pretrained = std::make_unique<tplm::TplmModel>(
      "pretrained_tplm", tplm_config, /*seed=*/config.data_seed ^ 0x7a7a7a);

  tplm::ModelCache cache = config.cache_dir == "default"
                               ? tplm::ModelCache::Default()
                               : tplm::ModelCache(config.cache_dir);
  util::WallTimer timer;
  exp.pretrain_stats = cache.GetOrPretrain(*exp.pretrained, exp.vocab, corpus,
                                           config.pretrain,
                                           tplm::CorpusFingerprint(corpus));
  exp.pretrain_cache_hit = cache.last_was_hit();
  if (!exp.pretrain_cache_hit) {
    DIAL_LOG_INFO << dataset_name << ": MLM pretraining took " << timer.Seconds()
                  << "s (loss " << exp.pretrain_stats.initial_loss << " -> "
                  << exp.pretrain_stats.final_loss << ")";
  }
  return exp;
}

ExperimentConfig DefaultExperimentConfig(data::Scale scale) {
  ExperimentConfig config;
  config.scale = scale;
  switch (scale) {
    case data::Scale::kSmoke:
      config.pretrain.epochs = 20;
      config.pretrain.pair_epochs = 10;
      break;
    case data::Scale::kSmall:
      config.pretrain.epochs = 40;
      config.pretrain.pair_epochs = 20;
      break;
    case data::Scale::kMedium:
      config.pretrain.epochs = 48;
      config.pretrain.pair_epochs = 24;
      break;
  }
  return config;
}

AlConfig DefaultAlConfig(data::Scale scale, uint64_t seed) {
  AlConfig config;
  config.seed = seed;
  switch (scale) {
    case data::Scale::kSmoke:
      config.rounds = 2;
      config.budget_per_round = 16;
      config.seed_per_class = 10;
      config.matcher.epochs = 12;
      config.blocker.epochs = 40;
      break;
    case data::Scale::kSmall:
      config.rounds = 4;
      config.budget_per_round = 32;
      config.seed_per_class = 24;
      config.matcher.epochs = 20;
      config.blocker.epochs = 80;
      break;
    case data::Scale::kMedium:
      config.rounds = 6;
      config.budget_per_round = 64;
      config.seed_per_class = 32;
      config.matcher.epochs = 20;
      config.blocker.epochs = 120;
      break;
  }
  return config;
}

}  // namespace dial::core
