#ifndef DIAL_CORE_METRICS_H_
#define DIAL_CORE_METRICS_H_

#include <unordered_set>
#include <vector>

#include "data/dataset.h"

/// \file
/// The paper's three evaluation measures (Sec. 4.1): recall of the blocker's
/// candidate set, P/R/F1 on the fixed test split Dtest, and P/R/F1 on all
/// pairs against the gold duplicate list.

namespace dial::core {

struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t predicted_positives = 0;
  size_t actual_positives = 0;
};

/// P/R/F1 from counts. Precision of zero predictions is defined as 0.
Prf PrfFromCounts(size_t true_positives, size_t predicted_positives,
                  size_t actual_positives);

/// Fraction of gold duplicates covered by the candidate pair set.
double CandidateRecall(const std::vector<data::PairId>& candidates,
                       const data::DatasetBundle& bundle);
double CandidateRecall(const std::unordered_set<uint64_t>& candidate_keys,
                       const data::DatasetBundle& bundle);

/// Test-set evaluation: a pair is predicted duplicate iff it is in `cand`
/// AND the matcher probability exceeds 0.5 (Sec. 4.1). `test_probs[i]`
/// corresponds to `bundle.test_pairs[i]`.
Prf EvaluateTestSet(const data::DatasetBundle& bundle,
                    const std::vector<float>& test_probs,
                    const std::unordered_set<uint64_t>& candidate_keys);

/// All-pairs evaluation: predicted duplicates = candidate pairs with
/// probability > 0.5, scored against the gold dups.
Prf EvaluateAllPairs(const data::DatasetBundle& bundle,
                     const std::vector<data::PairId>& candidates,
                     const std::vector<float>& candidate_probs);

/// All-pairs evaluation for methods that output a plain predicted-pairs set
/// (JedAI, similarity joins).
Prf EvaluatePredictedPairs(const data::DatasetBundle& bundle,
                           const std::vector<data::PairId>& predicted);

/// One operating point of a precision-recall sweep.
struct PrCurvePoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// Precision-recall curve over the candidate probabilities in all-pairs
/// semantics (recall denominator = |dups|, so the curve tops out at the
/// blocker's recall). One point per distinct probability, descending
/// threshold; ties are processed together.
std::vector<PrCurvePoint> PrCurve(const data::DatasetBundle& bundle,
                                  const std::vector<data::PairId>& candidates,
                                  const std::vector<float>& candidate_probs);

/// Average precision: Σ over gold hits of precision-at-that-rank / |dups|.
/// The single-number summary of the matcher's ranking quality that, unlike
/// F1@0.5, is threshold-free.
double AveragePrecision(const data::DatasetBundle& bundle,
                        const std::vector<data::PairId>& candidates,
                        const std::vector<float>& candidate_probs);

}  // namespace dial::core

#endif  // DIAL_CORE_METRICS_H_
