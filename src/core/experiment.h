#ifndef DIAL_CORE_EXPERIMENT_H_
#define DIAL_CORE_EXPERIMENT_H_

#include <memory>
#include <string>

#include "core/al_loop.h"
#include "data/registry.h"
#include "tplm/model_cache.h"

/// \file
/// Shared experiment plumbing for the examples and bench harnesses: build a
/// dataset, train its subword vocabulary, and MLM-pretrain (or cache-load)
/// the TPLM — the fixed preamble of every experiment in Sec. 4.

namespace dial::core {

struct ExperimentConfig {
  data::Scale scale = data::Scale::kSmall;
  uint64_t data_seed = 1;
  /// TPLM shape (defaults match DESIGN.md's CPU-scale model).
  tplm::TplmConfig tplm;
  tplm::PretrainOptions pretrain;
  /// "" disables the on-disk model cache.
  std::string cache_dir = "default";

  ExperimentConfig() {
    tplm.transformer.dim = 32;
    tplm.transformer.num_layers = 2;
    tplm.transformer.num_heads = 4;
    tplm.transformer.ffn_dim = 64;
    tplm.transformer.vocab_size = 2048;
    pretrain.epochs = 40;
  }
};

/// A ready-to-run experiment context.
struct Experiment {
  data::DatasetBundle bundle;
  text::SubwordVocab vocab;
  std::unique_ptr<tplm::TplmModel> pretrained;
  tplm::PretrainStats pretrain_stats;
  bool pretrain_cache_hit = false;
};

/// Generates `dataset_name`, trains the vocabulary on its corpus, and
/// pretrains the TPLM with MLM (cache-backed).
Experiment PrepareExperiment(const std::string& dataset_name,
                             const ExperimentConfig& config);

/// ExperimentConfig with pretraining depth matched to the scale (smoke runs
/// shorten pretraining so test/bench turnaround stays fast).
ExperimentConfig DefaultExperimentConfig(data::Scale scale);

/// AL configuration scaled to match the experiment scale (rounds, budget,
/// seed size shrink below paper values to fit CPU budgets; ratios match
/// Sec. 4.2).
AlConfig DefaultAlConfig(data::Scale scale, uint64_t seed);

}  // namespace dial::core

#endif  // DIAL_CORE_EXPERIMENT_H_
