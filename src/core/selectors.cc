#include "core/selectors.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "index/kmeans.h"
#include "la/kernels.h"

namespace dial::core {

SelectorKind ParseSelector(const std::string& text) {
  if (text == "random") return SelectorKind::kRandom;
  if (text == "greedy") return SelectorKind::kGreedy;
  if (text == "uncertainty") return SelectorKind::kUncertainty;
  if (text == "qbc") return SelectorKind::kQbc;
  if (text == "partition2") return SelectorKind::kPartition2;
  if (text == "partition4") return SelectorKind::kPartition4;
  if (text == "badge") return SelectorKind::kBadge;
  if (text == "coreset") return SelectorKind::kCoreset;
  if (text == "bald") return SelectorKind::kBald;
  if (text == "diverse") return SelectorKind::kDiverseBatch;
  DIAL_LOG_FATAL << "Unknown selector '" << text << "'";
  return SelectorKind::kUncertainty;
}

std::string SelectorName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kRandom:
      return "random";
    case SelectorKind::kGreedy:
      return "greedy";
    case SelectorKind::kUncertainty:
      return "uncertainty";
    case SelectorKind::kQbc:
      return "qbc";
    case SelectorKind::kPartition2:
      return "partition2";
    case SelectorKind::kPartition4:
      return "partition4";
    case SelectorKind::kBadge:
      return "badge";
    case SelectorKind::kCoreset:
      return "coreset";
    case SelectorKind::kBald:
      return "bald";
    case SelectorKind::kDiverseBatch:
      return "diverse";
  }
  return "?";
}

std::vector<SelectorKind> AllSelectors() {
  return {SelectorKind::kRandom,     SelectorKind::kGreedy,
          SelectorKind::kUncertainty, SelectorKind::kQbc,
          SelectorKind::kPartition2, SelectorKind::kPartition4,
          SelectorKind::kBadge,      SelectorKind::kCoreset,
          SelectorKind::kBald,       SelectorKind::kDiverseBatch};
}

bool SelectorNeedsCommitteeProbs(SelectorKind kind) {
  return kind == SelectorKind::kQbc || kind == SelectorKind::kBald;
}

bool SelectorNeedsEmbeddings(SelectorKind kind) {
  return kind == SelectorKind::kBadge || kind == SelectorKind::kCoreset ||
         kind == SelectorKind::kDiverseBatch;
}

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

namespace {

/// Top `budget` eligible indices by descending score.
std::vector<size_t> TopByScore(const std::vector<size_t>& eligible,
                               const std::vector<double>& scores, size_t budget) {
  std::vector<size_t> order(eligible.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return eligible[a] < eligible[b];
  });
  std::vector<size_t> out;
  for (size_t i = 0; i < order.size() && out.size() < budget; ++i) {
    out.push_back(eligible[order[i]]);
  }
  return out;
}

/// k-center greedy (Sener & Savarese): repeatedly picks the point farthest
/// from the already-selected set, so the batch covers the pool. Rows of
/// `embeddings` align with `eligible`. Deterministic: the first center is the
/// point farthest from the pool centroid.
std::vector<size_t> KCenterGreedy(const la::Matrix& embeddings,
                                  const std::vector<size_t>& eligible,
                                  size_t budget) {
  const size_t n = embeddings.rows();
  const size_t dim = embeddings.cols();
  std::vector<float> centroid(dim, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    const float* row = embeddings.row(i);
    for (size_t d = 0; d < dim; ++d) centroid[d] += row[d];
  }
  for (size_t d = 0; d < dim; ++d) centroid[d] /= static_cast<float>(n);

  // All pool-vs-point scans below run through the batched distance kernel;
  // the argmax reductions stay serial in row order, so results match the
  // scalar loop exactly.
  std::vector<float> dist(n);
  la::kernels::SquaredDistanceBatch(centroid.data(), embeddings.data(), n, dim,
                                    dist.data());
  const size_t first = la::kernels::ArgMax(dist.data(), n);
  std::vector<size_t> picked_rows = {first};
  std::vector<float> min_dist(n, std::numeric_limits<float>::infinity());
  while (picked_rows.size() < budget) {
    const float* last = embeddings.row(picked_rows.back());
    la::kernels::SquaredDistanceBatch(last, embeddings.data(), n, dim,
                                      dist.data());
    size_t farthest = 0;
    float far_d = -1.0f;
    for (size_t i = 0; i < n; ++i) {
      if (dist[i] < min_dist[i]) min_dist[i] = dist[i];
      if (min_dist[i] > far_d) {
        far_d = min_dist[i];
        farthest = i;
      }
    }
    if (far_d <= 0.0f) break;  // pool exhausted (all points are duplicates)
    picked_rows.push_back(farthest);
  }
  std::vector<size_t> out;
  out.reserve(picked_rows.size());
  for (const size_t row : picked_rows) out.push_back(eligible[row]);
  return out;
}

/// Diverse mini-batch selection (Zhdanov): keep the beta*budget most
/// uncertain points, cluster them into `budget` k-means clusters, and label
/// the member nearest each centroid. Balances informativeness and diversity
/// without BADGE's gradient machinery.
std::vector<size_t> DiverseMiniBatch(const la::Matrix& embeddings,
                                     const std::vector<size_t>& eligible,
                                     const std::vector<float>& probs,
                                     size_t budget, util::Rng& rng) {
  constexpr size_t kBeta = 10;  // pre-filter factor from the paper
  const size_t pool = std::min(eligible.size(), kBeta * budget);
  // Rows of the uncertain pool, by descending entropy.
  std::vector<size_t> order(eligible.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ha = BinaryEntropy(probs[eligible[a]]);
    const double hb = BinaryEntropy(probs[eligible[b]]);
    if (ha != hb) return ha > hb;
    return eligible[a] < eligible[b];
  });
  order.resize(pool);
  la::Matrix subset(pool, embeddings.cols());
  for (size_t i = 0; i < pool; ++i) {
    std::copy(embeddings.row(order[i]),
              embeddings.row(order[i]) + embeddings.cols(), subset.row(i));
  }
  const size_t k = std::min(budget, pool);
  const index::KMeansResult km = index::KMeans(subset, k, /*max_iterations=*/15, rng);
  // Nearest pool member to each centroid.
  std::vector<int> rep(k, -1);
  std::vector<float> rep_d(k, std::numeric_limits<float>::infinity());
  for (size_t i = 0; i < pool; ++i) {
    const int c = km.assignment[i];
    const float d = la::SquaredDistance(subset.row(i), km.centroids.row(c),
                                        subset.cols());
    if (d < rep_d[c]) {
      rep_d[c] = d;
      rep[c] = static_cast<int>(i);
    }
  }
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    if (rep[c] >= 0) out.push_back(eligible[order[rep[c]]]);
  }
  // Backfill from the entropy ranking if empty clusters lost slots.
  for (size_t i = 0; i < pool && out.size() < k; ++i) {
    const size_t cand_index = eligible[order[i]];
    if (std::find(out.begin(), out.end(), cand_index) == out.end()) {
      out.push_back(cand_index);
    }
  }
  return out;
}

SelectionResult SelectPartition(const std::vector<float>& probs,
                                const std::vector<size_t>& eligible, size_t budget,
                                bool with_pseudo) {
  // Split by prediction; rank by entropy.
  struct Item {
    size_t cand_index;
    double entropy;
  };
  std::vector<Item> positives, negatives;
  for (const size_t idx : eligible) {
    const double h = BinaryEntropy(probs[idx]);
    if (probs[idx] > 0.5f) {
      positives.push_back({idx, h});
    } else {
      negatives.push_back({idx, h});
    }
  }
  auto by_entropy_desc = [](const Item& a, const Item& b) {
    if (a.entropy != b.entropy) return a.entropy > b.entropy;
    return a.cand_index < b.cand_index;
  };
  std::sort(positives.begin(), positives.end(), by_entropy_desc);
  std::sort(negatives.begin(), negatives.end(), by_entropy_desc);

  SelectionResult result;
  const size_t half = budget / 2;
  // Least-confident positives and negatives; if one side runs short, fill
  // from the other.
  size_t take_pos = std::min(half, positives.size());
  size_t take_neg = std::min(budget - take_pos, negatives.size());
  take_pos = std::min(positives.size(), budget - take_neg);
  for (size_t i = 0; i < take_pos; ++i) result.to_label.push_back(positives[i].cand_index);
  for (size_t i = 0; i < take_neg; ++i) result.to_label.push_back(negatives[i].cand_index);

  if (with_pseudo) {
    // Most confident (lowest entropy) from each side, disjoint from to_label.
    const size_t pseudo_each = std::max<size_t>(1, budget / 4);
    for (size_t i = 0; i < pseudo_each && i < positives.size(); ++i) {
      const Item& item = positives[positives.size() - 1 - i];
      if (positives.size() - 1 - i < take_pos) break;  // overlaps labeled prefix
      result.pseudo_labels.push_back({item.cand_index, true});
    }
    for (size_t i = 0; i < pseudo_each && i < negatives.size(); ++i) {
      const Item& item = negatives[negatives.size() - 1 - i];
      if (negatives.size() - 1 - i < take_neg) break;
      result.pseudo_labels.push_back({item.cand_index, false});
    }
  }
  return result;
}

}  // namespace

SelectionResult SelectPairs(SelectorKind kind, const std::vector<Candidate>& cand,
                            const std::vector<float>& probs,
                            const std::vector<size_t>& eligible, size_t budget,
                            util::Rng& rng,
                            const std::vector<std::vector<float>>* committee_probs,
                            const la::Matrix* embeddings) {
  SelectionResult result;
  if (eligible.empty() || budget == 0) return result;
  budget = std::min(budget, eligible.size());

  switch (kind) {
    case SelectorKind::kRandom: {
      for (const size_t i : rng.SampleWithoutReplacement(eligible.size(), budget)) {
        result.to_label.push_back(eligible[i]);
      }
      return result;
    }
    case SelectorKind::kGreedy: {
      std::vector<double> scores(eligible.size());
      for (size_t i = 0; i < eligible.size(); ++i) {
        scores[i] = -static_cast<double>(cand[eligible[i]].distance);
      }
      result.to_label = TopByScore(eligible, scores, budget);
      return result;
    }
    case SelectorKind::kUncertainty: {
      DIAL_CHECK_EQ(probs.size(), cand.size());
      // Entropy buckets with blocker-similarity tie-breaking: among equally
      // uncertain pairs, prefer the ones the blocker ranks closest (these
      // carry more duplicates, keeping T from starving of positives).
      std::vector<double> scores(eligible.size());
      for (size_t i = 0; i < eligible.size(); ++i) {
        const double bucket =
            std::floor(BinaryEntropy(probs[eligible[i]]) * 20.0) / 20.0;
        scores[i] = bucket - 1e-6 * static_cast<double>(cand[eligible[i]].distance);
      }
      result.to_label = TopByScore(eligible, scores, budget);
      return result;
    }
    case SelectorKind::kQbc: {
      DIAL_CHECK(committee_probs != nullptr && !committee_probs->empty());
      std::vector<double> scores(eligible.size());
      for (size_t i = 0; i < eligible.size(); ++i) {
        double mean = 0.0;
        for (const auto& member : *committee_probs) {
          DIAL_CHECK_EQ(member.size(), cand.size());
          mean += member[eligible[i]];
        }
        mean /= static_cast<double>(committee_probs->size());
        scores[i] = BinaryEntropy(mean);
      }
      result.to_label = TopByScore(eligible, scores, budget);
      return result;
    }
    case SelectorKind::kPartition2:
      return SelectPartition(probs, eligible, budget, /*with_pseudo=*/false);
    case SelectorKind::kPartition4:
      return SelectPartition(probs, eligible, budget, /*with_pseudo=*/true);
    case SelectorKind::kBadge: {
      DIAL_CHECK(embeddings != nullptr);
      DIAL_CHECK_EQ(embeddings->rows(), eligible.size());
      const size_t k = std::min(budget, embeddings->rows());
      const auto seeds = index::KMeansPlusPlusSeed(*embeddings, k, rng);
      for (const size_t row : seeds) result.to_label.push_back(eligible[row]);
      return result;
    }
    case SelectorKind::kCoreset: {
      DIAL_CHECK(embeddings != nullptr);
      DIAL_CHECK_EQ(embeddings->rows(), eligible.size());
      result.to_label = KCenterGreedy(*embeddings, eligible, budget);
      return result;
    }
    case SelectorKind::kBald: {
      DIAL_CHECK(committee_probs != nullptr && !committee_probs->empty());
      // BALD mutual information: H(E[p]) - E[H(p)] over posterior samples.
      // Zero when every member agrees regardless of confidence; maximal when
      // members are individually confident but contradictory.
      std::vector<double> scores(eligible.size());
      for (size_t i = 0; i < eligible.size(); ++i) {
        double mean = 0.0;
        double mean_entropy = 0.0;
        for (const auto& member : *committee_probs) {
          DIAL_CHECK_EQ(member.size(), cand.size());
          mean += member[eligible[i]];
          mean_entropy += BinaryEntropy(member[eligible[i]]);
        }
        const double m = static_cast<double>(committee_probs->size());
        scores[i] = BinaryEntropy(mean / m) - mean_entropy / m;
      }
      result.to_label = TopByScore(eligible, scores, budget);
      return result;
    }
    case SelectorKind::kDiverseBatch: {
      DIAL_CHECK(embeddings != nullptr);
      DIAL_CHECK_EQ(embeddings->rows(), eligible.size());
      DIAL_CHECK_EQ(probs.size(), cand.size());
      result.to_label = DiverseMiniBatch(*embeddings, eligible, probs, budget, rng);
      return result;
    }
  }
  return result;
}

}  // namespace dial::core
