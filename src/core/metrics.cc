#include "core/metrics.h"

#include <algorithm>

namespace dial::core {

Prf PrfFromCounts(size_t true_positives, size_t predicted_positives,
                  size_t actual_positives) {
  Prf prf;
  prf.true_positives = true_positives;
  prf.predicted_positives = predicted_positives;
  prf.actual_positives = actual_positives;
  prf.precision = predicted_positives == 0
                      ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(predicted_positives);
  prf.recall = actual_positives == 0 ? 0.0
                                     : static_cast<double>(true_positives) /
                                           static_cast<double>(actual_positives);
  prf.f1 = (prf.precision + prf.recall) == 0.0
               ? 0.0
               : 2.0 * prf.precision * prf.recall / (prf.precision + prf.recall);
  return prf;
}

double CandidateRecall(const std::vector<data::PairId>& candidates,
                       const data::DatasetBundle& bundle) {
  std::unordered_set<uint64_t> keys;
  keys.reserve(candidates.size() * 2);
  for (const data::PairId& p : candidates) keys.insert(p.Key());
  return CandidateRecall(keys, bundle);
}

double CandidateRecall(const std::unordered_set<uint64_t>& candidate_keys,
                       const data::DatasetBundle& bundle) {
  if (bundle.dups.empty()) return 0.0;
  size_t hit = 0;
  for (const data::PairId& p : bundle.dups) hit += candidate_keys.count(p.Key());
  return static_cast<double>(hit) / static_cast<double>(bundle.dups.size());
}

Prf EvaluateTestSet(const data::DatasetBundle& bundle,
                    const std::vector<float>& test_probs,
                    const std::unordered_set<uint64_t>& candidate_keys) {
  DIAL_CHECK_EQ(test_probs.size(), bundle.test_pairs.size());
  size_t tp = 0;
  size_t predicted = 0;
  size_t actual = 0;
  for (size_t i = 0; i < bundle.test_pairs.size(); ++i) {
    const auto& lp = bundle.test_pairs[i];
    actual += lp.is_duplicate ? 1 : 0;
    const bool predicted_dup =
        candidate_keys.count(lp.pair.Key()) > 0 && test_probs[i] > 0.5f;
    if (predicted_dup) {
      ++predicted;
      if (lp.is_duplicate) ++tp;
    }
  }
  return PrfFromCounts(tp, predicted, actual);
}

Prf EvaluateAllPairs(const data::DatasetBundle& bundle,
                     const std::vector<data::PairId>& candidates,
                     const std::vector<float>& candidate_probs) {
  DIAL_CHECK_EQ(candidates.size(), candidate_probs.size());
  size_t tp = 0;
  size_t predicted = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidate_probs[i] <= 0.5f) continue;
    ++predicted;
    if (bundle.IsDuplicate(candidates[i])) ++tp;
  }
  return PrfFromCounts(tp, predicted, bundle.dups.size());
}

Prf EvaluatePredictedPairs(const data::DatasetBundle& bundle,
                           const std::vector<data::PairId>& predicted) {
  size_t tp = 0;
  for (const data::PairId& p : predicted) {
    if (bundle.IsDuplicate(p)) ++tp;
  }
  return PrfFromCounts(tp, predicted.size(), bundle.dups.size());
}

namespace {

/// Candidate indices by descending probability (stable on pair key).
std::vector<size_t> RankByProb(const std::vector<data::PairId>& candidates,
                               const std::vector<float>& probs) {
  DIAL_CHECK_EQ(candidates.size(), probs.size());
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (probs[a] != probs[b]) return probs[a] > probs[b];
    return candidates[a].Key() < candidates[b].Key();
  });
  return order;
}

}  // namespace

std::vector<PrCurvePoint> PrCurve(const data::DatasetBundle& bundle,
                                  const std::vector<data::PairId>& candidates,
                                  const std::vector<float>& candidate_probs) {
  const std::vector<size_t> order = RankByProb(candidates, candidate_probs);
  const double actual = static_cast<double>(bundle.dups.size());
  std::vector<PrCurvePoint> curve;
  size_t tp = 0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (bundle.IsDuplicate(candidates[order[rank]])) ++tp;
    const bool last = rank + 1 == order.size();
    // Emit one point per distinct threshold (process ties together).
    if (!last &&
        candidate_probs[order[rank]] == candidate_probs[order[rank + 1]]) {
      continue;
    }
    PrCurvePoint point;
    point.threshold = candidate_probs[order[rank]];
    point.precision = static_cast<double>(tp) / static_cast<double>(rank + 1);
    point.recall = actual > 0 ? static_cast<double>(tp) / actual : 0.0;
    curve.push_back(point);
  }
  return curve;
}

double AveragePrecision(const data::DatasetBundle& bundle,
                        const std::vector<data::PairId>& candidates,
                        const std::vector<float>& candidate_probs) {
  const std::vector<size_t> order = RankByProb(candidates, candidate_probs);
  if (bundle.dups.empty()) return 0.0;
  size_t tp = 0;
  double sum = 0.0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (!bundle.IsDuplicate(candidates[order[rank]])) continue;
    ++tp;
    sum += static_cast<double>(tp) / static_cast<double>(rank + 1);
  }
  return sum / static_cast<double>(bundle.dups.size());
}

}  // namespace dial::core
