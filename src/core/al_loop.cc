#include "core/al_loop.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "util/timer.h"

namespace dial::core {

namespace {

// AlConfig carries the precision as its CLI spelling; parse (with a hard
// failure on typos — silently running fp32 when the user asked for int8
// would invalidate any parity comparison) at each model-construction site.
autograd::Precision ConfiguredPrecision(const AlConfig& config) {
  autograd::Precision precision;
  if (!autograd::ParsePrecision(config.inference_precision, &precision)) {
    DIAL_LOG_FATAL << "Unknown inference_precision '"
                   << config.inference_precision << "' (fp32|int8)";
  }
  return precision;
}

}  // namespace

BlockingStrategy ParseBlocking(const std::string& text) {
  if (text == "dial") return BlockingStrategy::kDial;
  if (text == "paired_fixed") return BlockingStrategy::kPairedFixed;
  if (text == "paired_adapt") return BlockingStrategy::kPairedAdapt;
  if (text == "sentence_bert") return BlockingStrategy::kSentenceBert;
  if (text == "fixed_external") return BlockingStrategy::kFixedExternal;
  DIAL_LOG_FATAL << "Unknown blocking strategy '" << text << "'";
  return BlockingStrategy::kDial;
}

std::string BlockingName(BlockingStrategy strategy) {
  switch (strategy) {
    case BlockingStrategy::kDial:
      return "DIAL";
    case BlockingStrategy::kPairedFixed:
      return "PairedFixed";
    case BlockingStrategy::kPairedAdapt:
      return "PairedAdapt";
    case BlockingStrategy::kSentenceBert:
      return "SentenceBERT";
    case BlockingStrategy::kFixedExternal:
      return "Rules";
  }
  return "?";
}

ActiveLearningLoop::ActiveLearningLoop(const data::DatasetBundle* bundle,
                                       const text::SubwordVocab* vocab,
                                       tplm::TplmModel* pretrained, AlConfig config)
    : bundle_(bundle), vocab_(vocab), pretrained_(pretrained), config_(config) {
  DIAL_CHECK(bundle_ != nullptr);
  DIAL_CHECK(vocab_ != nullptr);
  DIAL_CHECK(pretrained_ != nullptr);
  if (config_.num_threads > 0) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
}

ActiveLearningLoop::~ActiveLearningLoop() = default;

void ActiveLearningLoop::SetExternalCandidates(std::vector<Candidate> candidates) {
  external_candidates_ = std::move(candidates);
}

void ActiveLearningLoop::SetCheckpointPath(std::string path) {
  checkpoint_path_ = std::move(path);
}

util::Status ActiveLearningLoop::RestoreCheckpoint(const std::string& path) {
  auto checkpoint = std::make_unique<AlCheckpoint>();
  IbcIndexCache restored_cache;
  DIAL_RETURN_IF_ERROR(LoadAlCheckpoint(path, checkpoint.get(), &restored_cache));
  if (checkpoint->dataset_name != bundle_->name) {
    return util::Status::InvalidArgument(
        "checkpoint is for dataset '" + checkpoint->dataset_name +
        "', loop is on '" + bundle_->name + "'");
  }
  if (checkpoint->config_fingerprint !=
      AlConfigFingerprint(config_, bundle_->name)) {
    return util::Status::InvalidArgument(
        "checkpoint was written under a different AL configuration");
  }
  if (checkpoint->next_round >= config_.rounds) {
    return util::Status::InvalidArgument("checkpoint has no rounds left to run");
  }
  restore_ = std::move(checkpoint);
  // The saved warm structure makes the resumed round's Refresh start from
  // exactly what the uninterrupted run had. (Empty for refresh=off runs.)
  index_cache_ = std::move(restored_cache);
  return util::Status::OK();
}

la::Matrix ActiveLearningLoop::EmbedAllR(Matcher& matcher) {
  std::vector<const text::EncodedSequence*> seqs;
  seqs.reserve(encodings_->r_size());
  for (size_t i = 0; i < encodings_->r_size(); ++i) seqs.push_back(&encodings_->R(i));
  return matcher.EmbedSingleMode(seqs);
}

la::Matrix ActiveLearningLoop::EmbedAllS(Matcher& matcher) {
  std::vector<const text::EncodedSequence*> seqs;
  seqs.reserve(encodings_->s_size());
  for (size_t i = 0; i < encodings_->s_size(); ++i) seqs.push_back(&encodings_->S(i));
  return matcher.EmbedSingleMode(seqs);
}

std::vector<Candidate> ActiveLearningLoop::BuildCandidates(size_t round,
                                                           Matcher& matcher,
                                                           RoundMetrics& metrics) {
  IbcConfig ibc;
  ibc.k_neighbors = config_.k_neighbors;
  ibc.cand_size = config_.cand_size_override > 0
                      ? config_.cand_size_override
                      : static_cast<size_t>(config_.cand_multiplier *
                                            static_cast<double>(bundle_->s_table.size()));
  ibc.backend = config_.index_backend;
  ibc.refresh = config_.refresh;
  // Rounds >= 2 warm-refresh the previous round's indexes through the cache;
  // refresh=off reverts to the paper's reconstruct-every-round protocol.
  IbcIndexCache* cache = config_.index_refresh ? &index_cache_ : nullptr;
  IbcStats ibc_stats;

  util::WallTimer timer;
  switch (config_.blocking) {
    case BlockingStrategy::kDial: {
      timer.Restart();
      const la::Matrix emb_r = EmbedAllR(matcher);
      const la::Matrix emb_s = EmbedAllS(matcher);
      metrics.t_embed = timer.Seconds();
      BlockerConfig blocker = config_.blocker;
      blocker.seed = config_.blocker.seed ^ (0x1000 + round);
      committee_ = std::make_unique<BlockerCommittee>(emb_r.cols(), blocker);
      committee_->SetThreadPool(pool_.get());
      committee_->SetInferenceEngine(config_.inference_engine);
      committee_->SetInferencePrecision(ConfiguredPrecision(config_));
      std::vector<data::PairId> dups;
      for (const auto& e : labeled_.positives()) dups.push_back(e.pair);
      std::vector<data::PairId> negs;
      for (const auto& e : labeled_.negatives()) negs.push_back(e.pair);
      committee_->Train(emb_r, emb_s, dups, negs);
      metrics.t_train_committee = timer.Seconds();
      timer.Restart();
      auto cand = IndexByCommittee(*committee_, emb_r, emb_s, ibc, pool_.get(),
                                   cache, &ibc_stats);
      metrics.t_index_retrieve = timer.Seconds();
      metrics.t_index_build = ibc_stats.index_build_seconds;
      metrics.index_warm_members = ibc_stats.warm_members;
      return cand;
    }
    case BlockingStrategy::kPairedFixed: {
      if (fixed_candidates_.empty()) {
        timer.Restart();
        Matcher probe(pretrained_->config(), config_.matcher, config_.seed ^ 0xfef1);
        probe.SetThreadPool(pool_.get());
        probe.SetInferenceEngine(config_.inference_engine);
        probe.SetInferencePrecision(ConfiguredPrecision(config_));
        probe.ResetFromPretrained(*pretrained_);
        const la::Matrix emb_r = EmbedAllR(probe);
        const la::Matrix emb_s = EmbedAllS(probe);
        fixed_candidates_ = DirectKnnCandidates(emb_r, emb_s, ibc, pool_.get());
        metrics.t_index_retrieve = timer.Seconds();
      }
      return fixed_candidates_;
    }
    case BlockingStrategy::kPairedAdapt: {
      timer.Restart();
      const la::Matrix emb_r = EmbedAllR(matcher);
      const la::Matrix emb_s = EmbedAllS(matcher);
      metrics.t_embed = timer.Seconds();
      auto cand =
          DirectKnnCandidates(emb_r, emb_s, ibc, pool_.get(), cache, &ibc_stats);
      metrics.t_index_retrieve = timer.Seconds();
      metrics.t_index_build = ibc_stats.index_build_seconds;
      metrics.index_warm_members = ibc_stats.warm_members;
      return cand;
    }
    case BlockingStrategy::kSentenceBert: {
      timer.Restart();
      // Rebuilt per round with round-derived seeds so rounds stay
      // independent (checkpoint resume relies on this).
      sbert_ = std::make_unique<SentenceBertBlocker>(
          pretrained_->config(), config_.sbert, config_.seed ^ (0x5be7 + round));
      sbert_->SetThreadPool(pool_.get());
      sbert_->SetInferenceEngine(config_.inference_engine);
      sbert_->SetInferencePrecision(ConfiguredPrecision(config_));
      sbert_->ResetFromPretrained(*pretrained_, 0xbeef + round);
      sbert_->Train(*encodings_, labeled_.AllPairs());
      metrics.t_train_committee = timer.Seconds();
      timer.Restart();
      const la::Matrix emb_r = sbert_->EmbedR(*encodings_);
      const la::Matrix emb_s = sbert_->EmbedS(*encodings_);
      metrics.t_embed = timer.Seconds();
      auto cand =
          DirectKnnCandidates(emb_r, emb_s, ibc, pool_.get(), cache, &ibc_stats);
      metrics.t_index_retrieve = timer.Seconds();
      metrics.t_index_build = ibc_stats.index_build_seconds;
      metrics.index_warm_members = ibc_stats.warm_members;
      return cand;
    }
    case BlockingStrategy::kFixedExternal: {
      DIAL_CHECK(!external_candidates_.empty())
          << "kFixedExternal requires SetExternalCandidates";
      return external_candidates_;
    }
  }
  return {};
}

AlResult ActiveLearningLoop::Run() {
  util::Rng rng(config_.seed);
  data::OracleLabeler oracle(bundle_);
  encodings_ = std::make_unique<RecordEncodings>(
      *bundle_, *vocab_, pretrained_->config().max_single_len);
  pair_cache_ = std::make_unique<PairEncodingCache>(
      bundle_, vocab_, pretrained_->config().max_pair_len);
  fixed_candidates_.clear();

  AlResult result;
  size_t start_round = 0;
  if (restore_ != nullptr) {
    // Resume: replay T, restore calibration pairs, RNG stream, budget
    // counter and completed-round metrics. Models are retrained per round
    // from the pretrained weights, so nothing else carries over.
    rng.SetState(restore_->rng_state);
    labeled_ = data::LabeledSet();
    for (const auto& e : restore_->positives) labeled_.AddPositive(e.pair, e.pseudo);
    for (const auto& e : restore_->negatives) labeled_.AddNegative(e.pair, e.pseudo);
    calibration_ = restore_->calibration;
    oracle.SetLabelsUsed(restore_->labels_used);
    result.rounds = restore_->rounds;
    start_round = restore_->next_round;
    restore_.reset();
  } else {
    labeled_ = data::SampleSeedSet(*bundle_, config_.seed_per_class, rng);
    calibration_.clear();
    index_cache_.Reset();  // a fresh run must not refresh a previous Run()'s
                           // indexes (RestoreCheckpoint repopulates instead)
  }
  DIAL_CHECK_LT(start_round, config_.rounds);

  MatcherConfig matcher_config = config_.matcher;
  std::unique_ptr<Matcher> matcher;
  std::vector<Candidate> cand;
  std::vector<float> cand_probs;
  util::WallTimer timer;

  for (size_t round = start_round; round < config_.rounds; ++round) {
    RoundMetrics metrics;
    metrics.round = round;
    metrics.labels_in_t = labeled_.size();
    metrics.positives_in_t = labeled_.positives().size();
    metrics.negatives_in_t = labeled_.negatives().size();

    // 1. Train the matcher on T (fresh from pretrained weights — Sec. 4.2:
    //    no warm start between rounds). Seeds are derived from the round
    //    index so rounds are independent of each other, which is what makes
    //    checkpoint resume bit-exact.
    timer.Restart();
    matcher_config.seed =
        config_.seed ^ 0xa1b2c3 ^ (round * 0x9e3779b97f4a7c15ULL);
    matcher = std::make_unique<Matcher>(pretrained_->config(), matcher_config,
                                        config_.seed ^ 0x1111 ^ round);
    matcher->SetThreadPool(pool_.get());
    matcher->SetInferenceEngine(config_.inference_engine);
    matcher->SetInferencePrecision(ConfiguredPrecision(config_));
    matcher->ResetFromPretrained(*pretrained_);
    matcher->Train(*pair_cache_, labeled_.AllPairs(), calibration_);
    metrics.t_train_matcher = timer.Seconds();

    // 2-3. Train blocker (strategy-dependent) and retrieve candidates.
    cand = BuildCandidates(round, *matcher, metrics);
    metrics.cand_size = cand.size();

    std::unordered_set<uint64_t> cand_keys;
    cand_keys.reserve(cand.size() * 2);
    for (const Candidate& c : cand) cand_keys.insert(c.pair.Key());
    metrics.cand_recall = CandidateRecall(cand_keys, *bundle_);

    // 4. Matcher probabilities over cand (used by both selection and the
    //    all-pairs metric; counted as selection time, like the paper's
    //    uncertainty computation).
    timer.Restart();
    cand_probs = matcher->PredictProbs(*pair_cache_, CandidatePairs(cand));
    double t_probs = timer.Seconds();
    metrics.t_predict = t_probs;

    // Evaluation (not part of the algorithm; untimed).
    std::vector<data::PairId> test_query;
    test_query.reserve(bundle_->test_pairs.size());
    for (const auto& lp : bundle_->test_pairs) test_query.push_back(lp.pair);
    const std::vector<float> test_probs = matcher->PredictProbs(*pair_cache_, test_query);
    metrics.test_prf = EvaluateTestSet(*bundle_, test_probs, cand_keys);
    if (config_.allpairs_each_round || round + 1 == config_.rounds) {
      metrics.allpairs_prf = EvaluateAllPairs(*bundle_, CandidatePairs(cand), cand_probs);
    }

    // 5. Select pairs to label: exclude Dtest and already-labeled pairs.
    timer.Restart();
    std::vector<size_t> eligible;
    eligible.reserve(cand.size());
    for (size_t i = 0; i < cand.size(); ++i) {
      if (bundle_->InTest(cand[i].pair)) continue;
      if (labeled_.Contains(cand[i].pair)) continue;
      eligible.push_back(i);
    }

    std::vector<std::vector<float>> qbc_probs;
    const std::vector<std::vector<float>>* qbc_ptr = nullptr;
    if (SelectorNeedsCommitteeProbs(config_.selector)) {
      // Bootstrap committee of matchers (Sec. 2.3.1) — learner-agnostic QBC.
      const auto all_pairs = labeled_.AllPairs();
      for (size_t m = 0; m < config_.qbc_committee_size; ++m) {
        MatcherConfig boot_config = matcher_config;
        boot_config.seed = matcher_config.seed ^ (0xb00 + m);
        Matcher boot(pretrained_->config(), boot_config, config_.seed ^ (0xc00 + m));
        boot.SetThreadPool(pool_.get());
        boot.SetInferenceEngine(config_.inference_engine);
        boot.SetInferencePrecision(ConfiguredPrecision(config_));
        boot.ResetFromPretrained(*pretrained_);
        std::vector<data::LabeledPair> sample;
        sample.reserve(all_pairs.size());
        for (const size_t idx :
             rng.SampleWithReplacement(all_pairs.size(), all_pairs.size())) {
          sample.push_back(all_pairs[idx]);
        }
        boot.Train(*pair_cache_, sample);
        qbc_probs.push_back(boot.PredictProbs(*pair_cache_, CandidatePairs(cand)));
      }
      qbc_ptr = &qbc_probs;
    }

    la::Matrix selector_embeddings;
    const la::Matrix* embeddings_ptr = nullptr;
    if (SelectorNeedsEmbeddings(config_.selector)) {
      std::vector<data::PairId> eligible_pairs;
      eligible_pairs.reserve(eligible.size());
      for (const size_t i : eligible) eligible_pairs.push_back(cand[i].pair);
      // BADGE scores with gradient embeddings; Core-Set and diverse
      // mini-batch cover the representation space.
      selector_embeddings =
          config_.selector == SelectorKind::kBadge
              ? matcher->BadgeEmbeddings(*pair_cache_, eligible_pairs)
              : matcher->PairRepresentations(*pair_cache_, eligible_pairs);
      embeddings_ptr = &selector_embeddings;
    }

    const SelectionResult selection =
        SelectPairs(config_.selector, cand, cand_probs, eligible,
                    config_.budget_per_round, rng, qbc_ptr, embeddings_ptr);
    metrics.t_select = timer.Seconds() + t_probs;

    // 6. Query the oracle and augment T.
    for (const size_t idx : selection.to_label) {
      const data::PairId pair = cand[idx].pair;
      if (oracle.Label(pair)) {
        labeled_.AddPositive(pair);
      } else {
        labeled_.AddNegative(pair);
      }
    }
    for (const auto& [idx, label] : selection.pseudo_labels) {
      if (label) {
        labeled_.AddPositive(cand[idx].pair, /*pseudo=*/true);
      } else {
        labeled_.AddNegative(cand[idx].pair, /*pseudo=*/true);
      }
    }

    // Refresh the presumed-negative calibration sample from the candidate
    // ranking's tail (duplicates concentrate near the head).
    calibration_.clear();
    if (config_.calibration_pairs > 0 && cand.size() > 4) {
      const size_t tail_begin = (3 * cand.size()) / 4;
      const size_t tail_size = cand.size() - tail_begin;
      for (const size_t offset :
           rng.SampleWithoutReplacement(tail_size,
                                        std::min(config_.calibration_pairs, tail_size))) {
        const data::PairId pair = cand[tail_begin + offset].pair;
        if (labeled_.Contains(pair) || bundle_->InTest(pair)) continue;
        calibration_.push_back(pair);
      }
    }

    result.rounds.push_back(metrics);

    if (!checkpoint_path_.empty()) {
      AlCheckpoint checkpoint;
      checkpoint.dataset_name = bundle_->name;
      checkpoint.config_fingerprint = AlConfigFingerprint(config_, bundle_->name);
      checkpoint.next_round = static_cast<uint32_t>(round + 1);
      checkpoint.labels_used = oracle.labels_used();
      checkpoint.rng_state = rng.GetState();
      checkpoint.positives = labeled_.positives();
      checkpoint.negatives = labeled_.negatives();
      checkpoint.calibration = calibration_;
      checkpoint.rounds = result.rounds;
      DIAL_CHECK_OK(SaveAlCheckpoint(checkpoint_path_, checkpoint,
                                     config_.index_refresh ? &index_cache_
                                                           : nullptr));
    }
  }

  DIAL_CHECK(!result.rounds.empty());
  const RoundMetrics& last = result.rounds.back();
  result.final_test = last.test_prf;
  result.final_allpairs = last.allpairs_prf;
  result.final_cand_recall = last.cand_recall;
  result.labels_used = oracle.labels_used();

  // Table 2 RT analogue: end-to-end inference time to emit all duplicate
  // pairs with the trained models (blocking + matching, no training).
  timer.Restart();
  {
    IbcConfig ibc;
    ibc.k_neighbors = config_.k_neighbors;
    ibc.cand_size = config_.cand_size_override > 0
                        ? config_.cand_size_override
                        : static_cast<size_t>(config_.cand_multiplier *
                                              static_cast<double>(bundle_->s_table.size()));
    ibc.backend = config_.index_backend;
    ibc.refresh = config_.refresh;
    // Deployment-shaped: the final blocking pass refreshes the live indexes
    // too (a no-op for the cold path when refresh is off).
    IbcIndexCache* cache = config_.index_refresh ? &index_cache_ : nullptr;
    std::vector<Candidate> final_cand;
    switch (config_.blocking) {
      case BlockingStrategy::kDial: {
        const la::Matrix emb_r = EmbedAllR(*matcher);
        const la::Matrix emb_s = EmbedAllS(*matcher);
        final_cand =
            IndexByCommittee(*committee_, emb_r, emb_s, ibc, pool_.get(), cache);
        break;
      }
      case BlockingStrategy::kPairedFixed:
        final_cand = fixed_candidates_;
        break;
      case BlockingStrategy::kPairedAdapt: {
        const la::Matrix emb_r = EmbedAllR(*matcher);
        const la::Matrix emb_s = EmbedAllS(*matcher);
        final_cand = DirectKnnCandidates(emb_r, emb_s, ibc, pool_.get(), cache);
        break;
      }
      case BlockingStrategy::kSentenceBert: {
        const la::Matrix emb_r = sbert_->EmbedR(*encodings_);
        const la::Matrix emb_s = sbert_->EmbedS(*encodings_);
        final_cand = DirectKnnCandidates(emb_r, emb_s, ibc, pool_.get(), cache);
        break;
      }
      case BlockingStrategy::kFixedExternal:
        final_cand = external_candidates_;
        break;
    }
    matcher->PredictProbs(*pair_cache_, CandidatePairs(final_cand));
  }
  result.block_match_seconds = timer.Seconds();
  final_matcher_ = std::move(matcher);
  return result;
}

TrainedModels ActiveLearningLoop::ReleaseTrainedModels() {
  DIAL_CHECK(final_matcher_ != nullptr)
      << "ReleaseTrainedModels requires a completed Run()";
  TrainedModels models;
  models.matcher = std::move(final_matcher_);
  models.committee = std::move(committee_);
  // Detach the loop-owned pool: the models may outlive this loop.
  models.matcher->SetThreadPool(nullptr);
  if (models.committee != nullptr) models.committee->SetThreadPool(nullptr);
  return models;
}

}  // namespace dial::core
