#ifndef DIAL_CORE_AL_LOOP_H_
#define DIAL_CORE_AL_LOOP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/committee.h"
#include "core/ibc.h"
#include "core/matcher.h"
#include "core/metrics.h"
#include "core/sbert.h"
#include "core/selectors.h"
#include "util/status.h"

/// \file
/// Algorithm 1: the integrated matcher-blocker active-learning loop, plus
/// the paper's baseline blocking strategies so every method runs under the
/// identical protocol (Sec. 4.2/4.3).

namespace dial::core {

enum class BlockingStrategy {
  kDial,           // learned committee + IBC (the paper's contribution)
  kPairedFixed,    // kNN over the *pretrained* TPLM's embeddings, fixed
  kPairedAdapt,    // kNN over the matcher-finetuned TPLM's embeddings
  kSentenceBert,   // kNN over a single-mode-finetuned TPLM (DITTO blocking)
  kFixedExternal,  // candidates supplied by the caller (Rules baseline)
};

BlockingStrategy ParseBlocking(const std::string& text);
std::string BlockingName(BlockingStrategy strategy);

struct AlConfig {
  size_t rounds = 10;
  size_t budget_per_round = 128;
  size_t seed_per_class = 64;
  /// |cand| = cand_multiplier * |S| unless cand_size_override > 0.
  double cand_multiplier = 3.0;
  size_t cand_size_override = 0;
  size_t k_neighbors = 3;
  MatcherConfig matcher;
  BlockerConfig blocker;
  SbertConfig sbert;
  IndexBackend index_backend = IndexBackend::kFlat;
  SelectorKind selector = SelectorKind::kUncertainty;
  BlockingStrategy blocking = BlockingStrategy::kDial;
  /// Bootstrap matcher committee size for the QBC selector.
  size_t qbc_committee_size = 3;
  /// Presumed-negative calibration pairs sampled each round from the tail of
  /// the candidate ranking (similar-looking, almost never duplicates) and
  /// fed to the next round's matcher training. 0 disables.
  size_t calibration_pairs = 32;
  /// Compute the all-pairs metric every round (Fig. 7) vs only at the end.
  bool allpairs_each_round = true;
  /// Worker threads for the blocking step (IBC member fan-out and batch
  /// index search). 0 = inline execution, today's default. Retrieval results
  /// are bit-identical for every value, so this is excluded from the
  /// checkpoint fingerprint: a run checkpointed at one thread count resumes
  /// exactly under another.
  size_t num_threads = 0;
  /// Route all model inference (pool scoring, embedding, committee encode)
  /// through the tape-free batched inference engine instead of per-sequence
  /// Tapes. Outputs are bit-identical either way (inference_test pins this),
  /// so — like num_threads — it is excluded from the checkpoint fingerprint;
  /// `false` is the tape-path baseline the bench axis measures against.
  bool inference_engine = true;
  /// Numeric mode for the inference engine's linear sublayers: "fp32"
  /// (default) or "int8" (per-row-scaled weight + activation quantization,
  /// la/quant.h). Unlike inference_engine, int8 is NOT bit-identical to the
  /// Tape path — it changes pool scores and therefore AL trajectories — so a
  /// non-default value IS hashed into the checkpoint fingerprint (the
  /// default is skipped to keep existing fp32 checkpoints resumable). Gated
  /// by the F1-parity test in the AL golden harness; training stays fp32.
  std::string inference_precision = "fp32";
  /// Warm-start the blocker indexes across rounds: rounds >= 2 Refresh the
  /// previous round's indexes (reusing trained centroids/codebooks/planes)
  /// instead of reconstructing them. `false` is the ablation/fallback path
  /// (reconstruct every round, the paper's protocol). Changes retrieval on
  /// the approximate backends, so — unlike num_threads — it IS part of the
  /// checkpoint fingerprint, as are the refresh knobs below.
  bool index_refresh = true;
  index::RefreshOptions refresh;
  uint64_t seed = 7;
};

/// Per-round measurements (feeds every figure/table harness).
struct RoundMetrics {
  size_t round = 0;
  size_t labels_in_t = 0;  // |T| when the round's models were trained
  size_t positives_in_t = 0;
  size_t negatives_in_t = 0;
  size_t cand_size = 0;
  double cand_recall = 0.0;
  Prf test_prf;
  Prf allpairs_prf;
  // Table 9 breakdown (seconds).
  double t_train_matcher = 0.0;
  double t_train_committee = 0.0;  // includes single-mode embedding
  double t_index_retrieve = 0.0;
  double t_select = 0.0;  // includes t_predict
  /// Within t_select: matcher PredictProbs over the candidate set — the
  /// model-forward share of selection (the tape-vs-engine bench axis).
  double t_predict = 0.0;
  /// Within t_train_committee (kDial) / t_index_retrieve (kPairedAdapt):
  /// single-mode embedding of all of R and S.
  double t_embed = 0.0;
  /// Within t_index_retrieve: per-member index build/refresh cost, summed
  /// across members (the build-vs-refresh axis of BENCH_refresh.json).
  double t_index_build = 0.0;
  /// Members that took the warm Refresh path this round (0 on round 1, on
  /// refresh=off runs, and for the strategies that keep no index).
  size_t index_warm_members = 0;
};

struct AlResult {
  std::vector<RoundMetrics> rounds;
  Prf final_test;
  Prf final_allpairs;
  double final_cand_recall = 0.0;
  /// Table 2 "RT": wall seconds to produce all duplicate pairs with the
  /// final models — blocking (embed + index + retrieve) plus matching
  /// (probability inference on cand). Excludes training.
  double block_match_seconds = 0.0;
  size_t labels_used = 0;
};

struct AlCheckpoint;  // core/checkpoint.h

/// The final round's trained models, released by the loop for serving. The
/// models are detached from the loop's thread pool before hand-off, so they
/// outlive the loop safely (a server attaches its own pool/contexts).
struct TrainedModels {
  std::unique_ptr<Matcher> matcher;
  /// Null for every blocking strategy except kDial.
  std::unique_ptr<BlockerCommittee> committee;
};

class ActiveLearningLoop {
 public:
  ActiveLearningLoop(const data::DatasetBundle* bundle,
                     const text::SubwordVocab* vocab, tplm::TplmModel* pretrained,
                     AlConfig config);
  ~ActiveLearningLoop();

  /// Supplies the fixed candidate set for BlockingStrategy::kFixedExternal.
  void SetExternalCandidates(std::vector<Candidate> candidates);

  /// Writes a checkpoint to `path` after every completed round (empty
  /// disables — the default). See core/checkpoint.h.
  void SetCheckpointPath(std::string path);

  /// Restores the cross-round AL state from a checkpoint written by a loop
  /// with the same dataset and configuration; the next Run() continues from
  /// the saved round and reproduces the uninterrupted run exactly. Non-OK on
  /// missing/corrupt files or dataset/config mismatch.
  util::Status RestoreCheckpoint(const std::string& path);

  AlResult Run();

  /// Transfers ownership of the final round's trained matcher (and, for
  /// kDial, committee) out of the loop — the loader split that lets a
  /// ServingBundle reuse a finished training run without retraining. Valid
  /// once, after Run(); the loop keeps no model state afterwards.
  TrainedModels ReleaseTrainedModels();

 private:
  /// Produces this round's candidate set; fills the timing fields.
  std::vector<Candidate> BuildCandidates(size_t round, Matcher& matcher,
                                         RoundMetrics& metrics);

  la::Matrix EmbedAllR(Matcher& matcher);
  la::Matrix EmbedAllS(Matcher& matcher);

  const data::DatasetBundle* bundle_;
  const text::SubwordVocab* vocab_;
  tplm::TplmModel* pretrained_;
  AlConfig config_;
  /// Owned workers behind AlConfig::num_threads (null when 0).
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<Candidate> external_candidates_;
  std::string checkpoint_path_;
  std::unique_ptr<AlCheckpoint> restore_;  // pending restored state

  // Round-scoped state (owned here so BuildCandidates can reach it).
  std::unique_ptr<RecordEncodings> encodings_;
  std::unique_ptr<PairEncodingCache> pair_cache_;
  std::unique_ptr<SentenceBertBlocker> sbert_;
  std::unique_ptr<BlockerCommittee> committee_;  // kept for RT measurement
  std::unique_ptr<Matcher> final_matcher_;       // retained by Run() for release
  /// Cross-round blocker indexes (the warm-start refresh path); persisted in
  /// checkpoints so a resumed run refreshes from the identical structure.
  IbcIndexCache index_cache_;
  std::vector<Candidate> fixed_candidates_;      // PairedFixed cache
  std::vector<data::PairId> calibration_;        // presumed negatives
  data::LabeledSet labeled_;
};

}  // namespace dial::core

#endif  // DIAL_CORE_AL_LOOP_H_
