#include "core/ibc.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "index/ivfpq_index.h"
#include "index/lsh_index.h"
#include "index/matmul_search.h"
#include "index/pq_index.h"
#include "index/sq_index.h"

namespace dial::core {

IndexBackend ParseIndexBackend(const std::string& text) {
  if (text == "flat") return IndexBackend::kFlat;
  if (text == "ivf") return IndexBackend::kIvf;
  if (text == "lsh") return IndexBackend::kLsh;
  if (text == "pq") return IndexBackend::kPq;
  if (text == "ivfpq") return IndexBackend::kIvfPq;
  if (text == "sq") return IndexBackend::kSq;
  if (text == "hnsw") return IndexBackend::kHnsw;
  if (text == "matmul") return IndexBackend::kMatmul;
  DIAL_LOG_FATAL << "Unknown index backend '" << text << "'";
  return IndexBackend::kFlat;
}

std::string IndexBackendName(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kFlat: return "flat";
    case IndexBackend::kIvf: return "ivf";
    case IndexBackend::kLsh: return "lsh";
    case IndexBackend::kPq: return "pq";
    case IndexBackend::kIvfPq: return "ivfpq";
    case IndexBackend::kSq: return "sq";
    case IndexBackend::kHnsw: return "hnsw";
    case IndexBackend::kMatmul: return "matmul";
  }
  return "unknown";
}

std::vector<IndexBackend> AllIndexBackends() {
  return {IndexBackend::kFlat,  IndexBackend::kIvf,  IndexBackend::kLsh,
          IndexBackend::kPq,    IndexBackend::kIvfPq, IndexBackend::kSq,
          IndexBackend::kHnsw,  IndexBackend::kMatmul};
}

namespace {

/// PQ needs num_subspaces | dim; picks the largest divisor of dim <= want.
size_t PqSubspacesFor(size_t dim, size_t want) {
  for (size_t m = std::min(want, dim); m >= 1; --m) {
    if (dim % m == 0) return m;
  }
  return 1;
}

std::unique_ptr<index::VectorIndex> MakeIndex(IndexBackend backend, size_t dim,
                                              index::Metric metric,
                                              util::ThreadPool* pool) {
  std::unique_ptr<index::VectorIndex> idx;
  switch (backend) {
    case IndexBackend::kFlat:
      idx = std::make_unique<index::FlatIndex>(dim, metric);
      break;
    case IndexBackend::kIvf:
      idx = std::make_unique<index::IvfIndex>(dim, metric, index::IvfIndex::Options{});
      break;
    case IndexBackend::kLsh:
      idx = std::make_unique<index::LshIndex>(dim, metric, index::LshIndex::Options{});
      break;
    case IndexBackend::kPq: {
      index::ProductQuantizer::Options pq;
      pq.num_subspaces = PqSubspacesFor(dim, 4);
      idx = std::make_unique<index::PqIndex>(dim, metric, pq);
      break;
    }
    case IndexBackend::kIvfPq: {
      index::IvfPqIndex::Options opts;
      opts.pq.num_subspaces = PqSubspacesFor(dim, 4);
      idx = std::make_unique<index::IvfPqIndex>(dim, metric, opts);
      break;
    }
    case IndexBackend::kSq:
      idx = std::make_unique<index::SqIndex>(dim, metric);
      break;
    case IndexBackend::kHnsw:
      idx = std::make_unique<index::HnswIndex>(dim, metric,
                                               index::HnswIndex::Options{});
      break;
    case IndexBackend::kMatmul:
      idx = std::make_unique<index::MatmulSearchIndex>(dim, metric);
      break;
  }
  if (idx != nullptr) idx->SetThreadPool(pool);
  return idx;
}

/// Merges per-member retrievals keeping the minimum distance per pair, then
/// sorts ascending and truncates.
std::vector<Candidate> MergeAndTruncate(
    std::unordered_map<uint64_t, Candidate>& best, size_t cand_size) {
  std::vector<Candidate> merged;
  merged.reserve(best.size());
  for (auto& [key, cand] : best) merged.push_back(cand);
  std::sort(merged.begin(), merged.end(), [](const Candidate& a, const Candidate& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.pair.Key() < b.pair.Key();
  });
  if (cand_size > 0 && merged.size() > cand_size) merged.resize(cand_size);
  return merged;
}

void AccumulateRetrieval(const index::SearchBatch& batch,
                         std::unordered_map<uint64_t, Candidate>& best) {
  for (size_t s = 0; s < batch.size(); ++s) {
    for (const index::Neighbor& nb : batch[s]) {
      const data::PairId pair{static_cast<uint32_t>(nb.id), static_cast<uint32_t>(s)};
      auto [it, inserted] = best.try_emplace(pair.Key(), Candidate{pair, nb.distance});
      if (!inserted && nb.distance < it->second.distance) {
        it->second.distance = nb.distance;
      }
    }
  }
}

}  // namespace

std::vector<Candidate> IndexByCommittee(BlockerCommittee& committee,
                                        const la::Matrix& emb_r,
                                        const la::Matrix& emb_s,
                                        const IbcConfig& config,
                                        util::ThreadPool* pool) {
  DIAL_CHECK_GT(committee.size(), 0u);
  // Members are independent until the merge, so encode/index/probe runs one
  // member per pool task (this is what keeps IBC's cost nearly flat in N,
  // the paper's Table 10 claim). The merge applies per-member batches in
  // member order, so results are identical with or without a pool.
  std::vector<index::SearchBatch> batches(committee.size());
  util::ParallelFor(pool, committee.size(), [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const la::Matrix enc_r = committee.Encode(k, emb_r);
      const la::Matrix enc_s = committee.Encode(k, emb_s);
      // The pool is forwarded into the per-member index: when this task is
      // already on a pool worker, nested ParallelFor calls degrade to inline
      // execution (no deadlock, same results); when IBC ran inline (null
      // pool), the index still gets null and stays inline.
      auto idx = MakeIndex(config.backend, enc_r.cols(), config.metric, pool);
      idx->Add(enc_r);
      batches[k] = idx->Search(enc_s, config.k_neighbors);
    }
  });
  std::unordered_map<uint64_t, Candidate> best;
  for (const index::SearchBatch& batch : batches) {
    AccumulateRetrieval(batch, best);
  }
  return MergeAndTruncate(best, config.cand_size);
}

std::vector<Candidate> DirectKnnCandidates(const la::Matrix& emb_r,
                                           const la::Matrix& emb_s,
                                           const IbcConfig& config,
                                           util::ThreadPool* pool) {
  std::unordered_map<uint64_t, Candidate> best;
  auto idx = MakeIndex(config.backend, emb_r.cols(), config.metric, pool);
  idx->Add(emb_r);
  AccumulateRetrieval(idx->Search(emb_s, config.k_neighbors), best);
  return MergeAndTruncate(best, config.cand_size);
}

std::vector<data::PairId> CandidatePairs(const std::vector<Candidate>& cand) {
  std::vector<data::PairId> out;
  out.reserve(cand.size());
  for (const Candidate& c : cand) out.push_back(c.pair);
  return out;
}

}  // namespace dial::core
