#include "core/ibc.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "util/timer.h"

#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "index/ivfpq_index.h"
#include "index/lsh_index.h"
#include "index/matmul_search.h"
#include "index/pq_index.h"
#include "index/sq_index.h"

namespace dial::core {

IndexBackend ParseIndexBackend(const std::string& text) {
  if (text == "flat") return IndexBackend::kFlat;
  if (text == "ivf") return IndexBackend::kIvf;
  if (text == "lsh") return IndexBackend::kLsh;
  if (text == "pq") return IndexBackend::kPq;
  if (text == "ivfpq") return IndexBackend::kIvfPq;
  if (text == "sq") return IndexBackend::kSq;
  if (text == "hnsw") return IndexBackend::kHnsw;
  if (text == "matmul") return IndexBackend::kMatmul;
  DIAL_LOG_FATAL << "Unknown index backend '" << text << "'";
  return IndexBackend::kFlat;
}

std::string IndexBackendName(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kFlat: return "flat";
    case IndexBackend::kIvf: return "ivf";
    case IndexBackend::kLsh: return "lsh";
    case IndexBackend::kPq: return "pq";
    case IndexBackend::kIvfPq: return "ivfpq";
    case IndexBackend::kSq: return "sq";
    case IndexBackend::kHnsw: return "hnsw";
    case IndexBackend::kMatmul: return "matmul";
  }
  return "unknown";
}

std::vector<IndexBackend> AllIndexBackends() {
  return {IndexBackend::kFlat,  IndexBackend::kIvf,  IndexBackend::kLsh,
          IndexBackend::kPq,    IndexBackend::kIvfPq, IndexBackend::kSq,
          IndexBackend::kHnsw,  IndexBackend::kMatmul};
}

namespace {

/// PQ needs num_subspaces | dim; picks the largest divisor of dim <= want.
size_t PqSubspacesFor(size_t dim, size_t want) {
  for (size_t m = std::min(want, dim); m >= 1; --m) {
    if (dim % m == 0) return m;
  }
  return 1;
}

}  // namespace

std::unique_ptr<index::VectorIndex> MakeIbcIndex(IndexBackend backend, size_t dim,
                                                 index::Metric metric,
                                                 util::ThreadPool* pool) {
  std::unique_ptr<index::VectorIndex> idx;
  switch (backend) {
    case IndexBackend::kFlat:
      idx = std::make_unique<index::FlatIndex>(dim, metric);
      break;
    case IndexBackend::kIvf:
      idx = std::make_unique<index::IvfIndex>(dim, metric, index::IvfIndex::Options{});
      break;
    case IndexBackend::kLsh:
      idx = std::make_unique<index::LshIndex>(dim, metric, index::LshIndex::Options{});
      break;
    case IndexBackend::kPq: {
      index::ProductQuantizer::Options pq;
      pq.num_subspaces = PqSubspacesFor(dim, 4);
      idx = std::make_unique<index::PqIndex>(dim, metric, pq);
      break;
    }
    case IndexBackend::kIvfPq: {
      index::IvfPqIndex::Options opts;
      opts.pq.num_subspaces = PqSubspacesFor(dim, 4);
      idx = std::make_unique<index::IvfPqIndex>(dim, metric, opts);
      break;
    }
    case IndexBackend::kSq:
      idx = std::make_unique<index::SqIndex>(dim, metric);
      break;
    case IndexBackend::kHnsw:
      idx = std::make_unique<index::HnswIndex>(dim, metric,
                                               index::HnswIndex::Options{});
      break;
    case IndexBackend::kMatmul:
      idx = std::make_unique<index::MatmulSearchIndex>(dim, metric);
      break;
  }
  if (idx != nullptr) idx->SetThreadPool(pool);
  return idx;
}

namespace {

/// Merges per-member retrievals keeping the minimum distance per pair, then
/// sorts ascending and truncates.
std::vector<Candidate> MergeAndTruncate(
    std::unordered_map<uint64_t, Candidate>& best, size_t cand_size) {
  std::vector<Candidate> merged;
  merged.reserve(best.size());
  for (auto& [key, cand] : best) merged.push_back(cand);
  std::sort(merged.begin(), merged.end(), [](const Candidate& a, const Candidate& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.pair.Key() < b.pair.Key();
  });
  if (cand_size > 0 && merged.size() > cand_size) merged.resize(cand_size);
  return merged;
}

void AccumulateRetrieval(const index::SearchBatch& batch,
                         std::unordered_map<uint64_t, Candidate>& best) {
  for (size_t s = 0; s < batch.size(); ++s) {
    for (const index::Neighbor& nb : batch[s]) {
      const data::PairId pair{static_cast<uint32_t>(nb.id), static_cast<uint32_t>(s)};
      auto [it, inserted] = best.try_emplace(pair.Key(), Candidate{pair, nb.distance});
      if (!inserted && nb.distance < it->second.distance) {
        it->second.distance = nb.distance;
      }
    }
  }
}

/// Builds-or-refreshes one cache slot (`slot` must already exist when the
/// cache is compatible — see PrepareCache) and returns the per-slot stats.
/// With a null cache the index is built fresh and discarded by the caller.
index::RefreshStats PopulateIndex(index::VectorIndex& idx,
                                  const la::Matrix& vectors, bool use_refresh,
                                  const index::RefreshOptions& refresh) {
  if (use_refresh) return idx.Refresh(vectors, refresh);
  idx.Add(vectors);
  return {};
}

/// Ensures `cache` has one compatible index per slot; returns true when the
/// existing indexes should be Refresh()ed (false = slots were (re)created
/// and must be cold-Added). Never called with a null cache.
bool PrepareCache(IbcIndexCache& cache, IndexBackend backend,
                  index::Metric metric, size_t dim, size_t slots,
                  util::ThreadPool* pool) {
  const bool reuse = cache.Compatible(backend, metric, dim, slots);
  if (!reuse) {
    cache.Reset();
    cache.backend = backend;
    cache.metric = metric;
    cache.dim = dim;
    cache.members.reserve(slots);
    for (size_t k = 0; k < slots; ++k) {
      cache.members.push_back(MakeIbcIndex(backend, dim, metric, pool));
    }
  } else {
    for (auto& member : cache.members) member->SetThreadPool(pool);
  }
  return reuse;
}

}  // namespace

void IbcIndexCache::Reset() {
  members.clear();
  dim = 0;
}

bool IbcIndexCache::Compatible(IndexBackend backend_in, index::Metric metric_in,
                               size_t dim_in, size_t member_count) const {
  return !members.empty() && backend == backend_in && metric == metric_in &&
         dim == dim_in && members.size() == member_count;
}

void IbcIndexCache::SaveWarmState(util::BinaryWriter& writer) const {
  writer.WriteU64(members.size());
  if (members.empty()) return;
  writer.WriteU32(static_cast<uint32_t>(backend));
  writer.WriteU32(static_cast<uint32_t>(metric));
  writer.WriteU64(dim);
  for (const auto& member : members) member->SaveWarmState(writer);
}

util::Status IbcIndexCache::LoadWarmState(util::BinaryReader& reader) {
  Reset();
  const uint64_t count = reader.ReadU64();
  if (!reader.status().ok()) return reader.status();
  if (count == 0) return util::Status::OK();
  if (count > 4096) return util::Status::Corruption("index cache member count");
  const uint32_t backend_raw = reader.ReadU32();
  const uint32_t metric_raw = reader.ReadU32();
  const uint64_t dim_in = reader.ReadU64();
  if (!reader.status().ok()) return reader.status();
  if (backend_raw > static_cast<uint32_t>(IndexBackend::kMatmul) ||
      metric_raw > static_cast<uint32_t>(index::Metric::kCosine)) {
    return util::Status::Corruption("index cache backend/metric tag");
  }
  if (dim_in == 0 || dim_in > (1u << 24)) {
    return util::Status::Corruption("index cache dim");
  }
  backend = static_cast<IndexBackend>(backend_raw);
  metric = static_cast<index::Metric>(metric_raw);
  dim = dim_in;
  members.reserve(count);
  for (uint64_t k = 0; k < count; ++k) {
    auto idx = MakeIbcIndex(backend, dim, metric, nullptr);
    DIAL_RETURN_IF_ERROR(idx->LoadWarmState(reader));
    members.push_back(std::move(idx));
  }
  return util::Status::OK();
}

std::vector<Candidate> IndexByCommittee(BlockerCommittee& committee,
                                        const la::Matrix& emb_r,
                                        const la::Matrix& emb_s,
                                        const IbcConfig& config,
                                        util::ThreadPool* pool,
                                        IbcIndexCache* cache, IbcStats* stats) {
  DIAL_CHECK_GT(committee.size(), 0u);
  const size_t n_members = committee.size();
  bool use_refresh = false;
  if (cache != nullptr) {
    use_refresh = PrepareCache(*cache, config.backend, config.metric,
                               emb_r.cols(), n_members, pool);
  }
  // Members are independent until the merge, so encode/index/probe runs one
  // member per pool task (this is what keeps IBC's cost nearly flat in N,
  // the paper's Table 10 claim). The merge applies per-member batches in
  // member order, so results are identical with or without a pool.
  std::vector<index::SearchBatch> batches(n_members);
  std::vector<index::RefreshStats> refresh_stats(n_members);
  std::vector<double> build_seconds(n_members, 0.0);
  util::ParallelFor(pool, n_members, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const la::Matrix enc_r = committee.Encode(k, emb_r);
      const la::Matrix enc_s = committee.Encode(k, emb_s);
      // The pool is forwarded into the per-member index: when this task is
      // already on a pool worker, nested ParallelFor calls degrade to inline
      // execution (no deadlock, same results); when IBC ran inline (null
      // pool), the index still gets null and stays inline.
      std::unique_ptr<index::VectorIndex> owned;
      index::VectorIndex* idx;
      if (cache != nullptr) {
        idx = cache->members[k].get();
      } else {
        owned = MakeIbcIndex(config.backend, enc_r.cols(), config.metric, pool);
        idx = owned.get();
      }
      util::WallTimer timer;
      refresh_stats[k] =
          PopulateIndex(*idx, enc_r, use_refresh, config.refresh);
      build_seconds[k] = timer.Seconds();
      batches[k] = idx->Search(enc_s, config.k_neighbors);
    }
  });
  if (stats != nullptr) {
    *stats = IbcStats{};
    for (size_t k = 0; k < n_members; ++k) {
      stats->index_build_seconds += build_seconds[k];
      stats->warm_members += refresh_stats[k].warm ? 1 : 0;
      stats->retrained_members += refresh_stats[k].retrained ? 1 : 0;
    }
  }
  std::unordered_map<uint64_t, Candidate> best;
  for (const index::SearchBatch& batch : batches) {
    AccumulateRetrieval(batch, best);
  }
  return MergeAndTruncate(best, config.cand_size);
}

std::vector<Candidate> DirectKnnCandidates(const la::Matrix& emb_r,
                                           const la::Matrix& emb_s,
                                           const IbcConfig& config,
                                           util::ThreadPool* pool,
                                           IbcIndexCache* cache, IbcStats* stats) {
  bool use_refresh = false;
  std::unique_ptr<index::VectorIndex> owned;
  index::VectorIndex* idx;
  if (cache != nullptr) {
    use_refresh = PrepareCache(*cache, config.backend, config.metric,
                               emb_r.cols(), 1, pool);
    idx = cache->members[0].get();
  } else {
    owned = MakeIbcIndex(config.backend, emb_r.cols(), config.metric, pool);
    idx = owned.get();
  }
  util::WallTimer timer;
  const index::RefreshStats refreshed =
      PopulateIndex(*idx, emb_r, use_refresh, config.refresh);
  if (stats != nullptr) {
    *stats = IbcStats{};
    stats->index_build_seconds = timer.Seconds();
    stats->warm_members = refreshed.warm ? 1 : 0;
    stats->retrained_members = refreshed.retrained ? 1 : 0;
  }
  std::unordered_map<uint64_t, Candidate> best;
  AccumulateRetrieval(idx->Search(emb_s, config.k_neighbors), best);
  return MergeAndTruncate(best, config.cand_size);
}

std::vector<data::PairId> CandidatePairs(const std::vector<Candidate>& cand) {
  std::vector<data::PairId> out;
  out.reserve(cand.size());
  for (const Candidate& c : cand) out.push_back(c.pair);
  return out;
}

}  // namespace dial::core
