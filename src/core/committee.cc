#include "core/committee.h"

#include <algorithm>

#include "autograd/optim.h"
#include "autograd/ops.h"
#include "util/string_util.h"

namespace dial::core {

using autograd::Var;

BlockerObjective ParseObjective(const std::string& text) {
  if (text == "contrastive") return BlockerObjective::kContrastive;
  if (text == "triplet") return BlockerObjective::kTriplet;
  if (text == "classification") return BlockerObjective::kClassification;
  DIAL_LOG_FATAL << "Unknown blocker objective '" << text << "'";
  return BlockerObjective::kContrastive;
}

std::string ObjectiveName(BlockerObjective objective) {
  switch (objective) {
    case BlockerObjective::kContrastive:
      return "contrastive";
    case BlockerObjective::kTriplet:
      return "triplet";
    case BlockerObjective::kClassification:
      return "classification";
  }
  return "?";
}

std::string NegativeSourceName(NegativeSource source) {
  return source == NegativeSource::kRandom ? "random" : "labeled";
}

CommitteeMember::CommitteeMember(std::string name, size_t dim, double mask_keep_prob,
                                 bool normalize_output, util::Rng& rng)
    : Module(name),
      mask_(1, dim),
      linear_(name + ".u", dim, dim, rng),
      normalize_output_(normalize_output),
      scratch_rng_(rng.Next()) {
  // Fixed random mask; guarantee at least one kept dimension.
  size_t kept = 0;
  for (size_t c = 0; c < dim; ++c) {
    const bool keep = rng.Bernoulli(mask_keep_prob);
    mask_(0, c) = keep ? 1.0f : 0.0f;
    kept += keep ? 1 : 0;
  }
  if (kept == 0) mask_(0, rng.UniformInt(dim)) = 1.0f;
  AddChild(&linear_);
  // Near-identity initialization: the member starts out approximately
  // preserving the (masked) frozen embedding space, so the untrained
  // committee already retrieves like the raw embeddings; contrastive
  // training then specializes each member. A random affine map would
  // destroy the lexical neighbourhood structure E(x) carries.
  auto params = linear_.Parameters();
  autograd::Parameter* weight = params[0];
  weight->value.Zero();
  for (size_t c = 0; c < dim; ++c) {
    weight->value(c, c) = 1.0f;
    for (size_t j = 0; j < dim; ++j) {
      weight->value(c, j) += static_cast<float>(rng.Normal()) * 0.02f;
    }
  }
}

Var CommitteeMember::Forward(nn::ForwardContext& ctx, Var embeddings) {
  Var mask = ctx.tape->Constant(mask_);
  Var masked = autograd::MulRowBroadcast(embeddings, mask);
  Var out = autograd::Tanh(linear_.Forward(ctx, masked));
  if (normalize_output_) out = autograd::NormalizeRows(out);
  return out;
}

la::Matrix CommitteeMember::TransformWith(autograd::InferenceContext& ctx,
                                          const la::Matrix& embeddings) const {
  namespace infer = autograd::infer;
  // Mirrors Forward's graph: mask broadcast, linear, tanh, optional row
  // normalization — tape-free through the supplied arena.
  autograd::Scratch masked(ctx, embeddings.rows(), embeddings.cols());
  const float* mask = mask_.row(0);
  for (size_t r = 0; r < embeddings.rows(); ++r) {
    const float* src = embeddings.row(r);
    float* dst = masked->row(r);
    for (size_t c = 0; c < embeddings.cols(); ++c) dst[c] = src[c] * mask[c];
  }
  autograd::Scratch out = linear_.InferForward(ctx, *masked);
  infer::TanhInPlace(*out);
  if (normalize_output_) infer::NormalizeRowsInPlace(*out);
  return *out;
}

la::Matrix CommitteeMember::Transform(const la::Matrix& embeddings) {
  if (use_inference_) {
    return TransformWith(infer_ctx_, embeddings);
  }
  autograd::Tape tape;
  tape.SetThreadPool(pool_);
  nn::ForwardContext ctx{&tape, &scratch_rng_, /*training=*/false};
  Var out = Forward(ctx, tape.Constant(embeddings));
  return out.value();
}

void CommitteeMember::SaveState(util::BinaryWriter& writer) {
  writer.WriteFloats(mask_.row(0), mask_.cols());
  Save(writer);
}

util::Status CommitteeMember::LoadState(util::BinaryReader& reader) {
  const std::vector<float> mask = reader.ReadFloatVector();
  DIAL_RETURN_IF_ERROR(reader.status());
  if (mask.size() != mask_.cols()) {
    return util::Status::Corruption("committee member mask has wrong dimension");
  }
  std::copy(mask.begin(), mask.end(), mask_.row(0));
  return Load(reader);
}

BlockerCommittee::BlockerCommittee(size_t dim, const BlockerConfig& config)
    : config_(config), dim_(dim) {
  util::Rng rng(config.seed);
  for (size_t k = 0; k < config.committee_size; ++k) {
    members_.push_back(std::make_unique<CommitteeMember>(
        util::StrFormat("committee.m%zu", k), dim, config.mask_keep_prob,
        config.normalize_output, rng));
    if (config.objective == BlockerObjective::kClassification) {
      heads_.push_back(std::make_unique<nn::SentencePairHead>(
          util::StrFormat("committee.head%zu", k), dim, rng));
    }
  }
}

void BlockerCommittee::SaveWeights(util::BinaryWriter& writer) {
  writer.WriteU64(members_.size());
  writer.WriteU64(dim_);
  for (auto& member : members_) member->SaveState(writer);
}

util::Status BlockerCommittee::LoadWeights(util::BinaryReader& reader) {
  const uint64_t count = reader.ReadU64();
  const uint64_t dim = reader.ReadU64();
  DIAL_RETURN_IF_ERROR(reader.status());
  if (count != members_.size() || dim != dim_) {
    return util::Status::Corruption("committee shape mismatch");
  }
  for (auto& member : members_) {
    DIAL_RETURN_IF_ERROR(member->LoadState(reader));
  }
  return util::Status::OK();
}

double BlockerCommittee::Train(const la::Matrix& emb_r, const la::Matrix& emb_s,
                               const std::vector<data::PairId>& dups,
                               const std::vector<data::PairId>& labeled_negatives) {
  DIAL_CHECK(!dups.empty()) << "committee training requires labeled duplicates";
  if (config_.negatives == NegativeSource::kLabeled) {
    DIAL_CHECK(!labeled_negatives.empty())
        << "NegativeSource::kLabeled requires labeled negatives";
  }
  util::Rng rng(config_.seed ^ 0x5151515151ULL);
  double total = 0.0;
  for (size_t k = 0; k < members_.size(); ++k) {
    util::Rng member_rng = rng.Fork();
    total += TrainMember(k, emb_r, emb_s, dups, labeled_negatives, member_rng);
  }
  return total / static_cast<double>(members_.size());
}

namespace {

/// Gathers rows of `source` into a dense matrix.
la::Matrix GatherRows(const la::Matrix& source, const std::vector<uint32_t>& rows) {
  la::Matrix out(rows.size(), source.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    DIAL_CHECK_LT(rows[i], source.rows());
    std::copy(source.row(rows[i]), source.row(rows[i]) + source.cols(), out.row(i));
  }
  return out;
}

}  // namespace

double BlockerCommittee::TrainMember(size_t k, const la::Matrix& emb_r,
                                     const la::Matrix& emb_s,
                                     const std::vector<data::PairId>& dups,
                                     const std::vector<data::PairId>& labeled_negatives,
                                     util::Rng& rng) {
  CommitteeMember& member = *members_[k];
  std::vector<autograd::Parameter*> params = member.Parameters();
  if (config_.objective == BlockerObjective::kClassification) {
    for (autograd::Parameter* p : heads_[k]->Parameters()) params.push_back(p);
  }
  autograd::AdamW optimizer({{params, config_.lr}});

  std::vector<size_t> order(dups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double last_epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t begin = 0; begin < order.size(); begin += config_.batch_size) {
      const size_t end = std::min(order.size(), begin + config_.batch_size);
      const size_t bp = end - begin;
      const size_t b = config_.batch_size;

      // Positive pair embeddings.
      std::vector<uint32_t> pos_r(bp), pos_s(bp);
      for (size_t i = 0; i < bp; ++i) {
        pos_r[i] = dups[order[begin + i]].r;
        pos_s[i] = dups[order[begin + i]].s;
      }

      // Negative records: random records (Sec. 3.2.2) or the r/s sides of
      // labeled hard negatives (Table 4 ablation). Each member shuffles its
      // own negative pairing (the "random shuffle per committee" of §3.2.2).
      std::vector<uint32_t> neg_r(b), neg_s(b);
      if (config_.negatives == NegativeSource::kRandom) {
        for (size_t i = 0; i < b; ++i) {
          neg_r[i] = static_cast<uint32_t>(rng.UniformInt(emb_r.rows()));
          neg_s[i] = static_cast<uint32_t>(rng.UniformInt(emb_s.rows()));
        }
      } else {
        for (size_t i = 0; i < b; ++i) {
          const auto& p1 = labeled_negatives[rng.UniformInt(labeled_negatives.size())];
          const auto& p2 = labeled_negatives[rng.UniformInt(labeled_negatives.size())];
          neg_r[i] = p1.r;
          neg_s[i] = p2.s;
        }
      }

      autograd::Tape tape;
      tape.SetThreadPool(member.thread_pool());
      nn::ForwardContext ctx{&tape, &rng, /*training=*/true};
      Var p_r = member.Forward(ctx, tape.Constant(GatherRows(emb_r, pos_r)));
      Var p_s = member.Forward(ctx, tape.Constant(GatherRows(emb_s, pos_s)));
      Var n_r = member.Forward(ctx, tape.Constant(GatherRows(emb_r, neg_r)));
      Var n_s = member.Forward(ctx, tape.Constant(GatherRows(emb_s, neg_s)));

      Var loss;
      switch (config_.objective) {
        case BlockerObjective::kContrastive: {
          // Eq. 8 in log-space: loss_p = LSE over {-d(rp,sp), -d(ri,sp),
          // -d(rp,si), -d(ri,si)} minus (-d(rp,sp)); distances scaled by the
          // temperature (Sec. 3.2.3's "scaled" similarity).
          const float scale = config_.distance_scale;
          Var d_pos = autograd::RowwiseSquaredDistance(p_r, p_s);        // (bp,1)
          Var d_sr = autograd::PairwiseSquaredDistance(p_s, n_r);        // (bp,b)
          Var d_rs = autograd::PairwiseSquaredDistance(p_r, n_s);        // (bp,b)
          Var d_rr = autograd::RowwiseSquaredDistance(n_r, n_s);         // (b,1)
          Var shared = autograd::TileRows(
              autograd::Transpose(autograd::ScalarMul(d_rr, -scale)), bp);  // (bp,b)
          Var terms = autograd::ConcatCols({autograd::ScalarMul(d_pos, -scale),
                                            autograd::ScalarMul(d_sr, -scale),
                                            autograd::ScalarMul(d_rs, -scale), shared});
          Var lse = autograd::LogSumExpRows(terms);  // (bp,1)
          loss = autograd::MeanAll(
              autograd::Add(lse, autograd::ScalarMul(d_pos, scale)));
          break;
        }
        case BlockerObjective::kTriplet: {
          // Cyclic pairing of negatives with anchors; squared distances.
          std::vector<uint32_t> cyc(bp);
          for (size_t i = 0; i < bp; ++i) cyc[i] = static_cast<uint32_t>(i % b);
          Var n_s_sel = member.Forward(
              ctx, tape.Constant(GatherRows(GatherRows(emb_s, neg_s), cyc)));
          Var n_r_sel = member.Forward(
              ctx, tape.Constant(GatherRows(GatherRows(emb_r, neg_r), cyc)));
          Var d_ap = autograd::RowwiseSquaredDistance(p_r, p_s);
          Var d_an1 = autograd::RowwiseSquaredDistance(p_r, n_s_sel);
          Var d_an2 = autograd::RowwiseSquaredDistance(p_s, n_r_sel);
          Var t1 = autograd::Relu(
              autograd::AddScalar(autograd::Sub(d_ap, d_an1), config_.triplet_margin));
          Var t2 = autograd::Relu(
              autograd::AddScalar(autograd::Sub(d_ap, d_an2), config_.triplet_margin));
          loss = autograd::MeanAll(autograd::Add(t1, t2));
          break;
        }
        case BlockerObjective::kClassification: {
          Var pos_logits = heads_[k]->Forward(ctx, p_r, p_s);
          Var neg_logits = heads_[k]->Forward(ctx, n_r, n_s);
          Var logits = autograd::ConcatRows({pos_logits, neg_logits});
          std::vector<float> targets(bp + b, 0.0f);
          for (size_t i = 0; i < bp; ++i) targets[i] = 1.0f;
          loss = autograd::BceWithLogits(logits, targets);
          break;
        }
      }
      optimizer.ZeroGrad();
      tape.Backward(loss);
      optimizer.Step();
      epoch_loss += loss.scalar();
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
  }
  return last_epoch_loss;
}

}  // namespace dial::core
