#ifndef DIAL_CORE_MATCHER_H_
#define DIAL_CORE_MATCHER_H_

#include <memory>
#include <vector>

#include "autograd/inference.h"
#include "core/encodings.h"
#include "nn/layers.h"
#include "tplm/tplm.h"
#include "util/serialize.h"

/// \file
/// The DIAL matcher (Sec. 3.1): the TPLM in paired mode plus the
/// classification head of Eq. 5, trained with binary cross entropy (Eq. 6)
/// on the labeled pairs T. Exposes single-mode embeddings (the frozen E(x)
/// the blocker builds on) and BADGE gradient embeddings.

namespace dial::core {

struct MatcherConfig {
  size_t epochs = 12;
  size_t batch_size = 8;
  /// Learning rates for the two parameter groups (paper: 3e-5 / 1e-3 for a
  /// 768-d RoBERTa; scaled up for this repo's small randomly-pretrained
  /// transformer, same 1:10-ish ratio).
  float lr_transformer = 2e-4f;
  float lr_head = 1e-3f;
  float dropout = 0.1f;
  /// When true the transformer body is not updated (multilingual setting,
  /// Sec. 4.5: "freezing the TPLM parameters leads to slightly better F1").
  bool freeze_transformer = false;
  /// Oversamples the minority class so each epoch sees a roughly balanced
  /// stream — needed at this repo's small model scale to keep the matcher
  /// from collapsing to the majority class as AL accumulates negatives.
  bool balance_classes = true;
  /// Majority:minority ratio after oversampling (1.0 = fully balanced).
  /// Values > 1 trade recall for precision.
  double max_class_ratio = 1.0;
  /// Probability of training on a piece-perturbed copy of a pair instead of
  /// the original (drop/swap of non-special pieces). Diversifies the
  /// oversampled minority class; 0 disables.
  double augment_prob = 0.5;
  double augment_drop_prob = 0.1;
  double augment_swap_prob = 0.05;
  /// Fraction (of |T|) of presumed-negative random R×S pairs mixed into each
  /// training run for calibration. At benchmark duplicate rates (<= 1e-3) a
  /// random pair is a non-duplicate with near certainty, so no labels are
  /// consumed. Without these the matcher — trained only on blocked hard
  /// negatives — misfires on the moderately-similar pairs that dominate the
  /// candidate set. 0 disables.
  double random_negative_fraction = 0.3;
  /// Stop training once the epoch-mean loss drops below this (0 disables).
  /// Prevents the boundary from over-tightening around the (oversampled)
  /// positives when AL floods T with near-duplicate negatives.
  double early_stop_loss = 0.18;
  uint64_t seed = 101;
};

class Matcher {
 public:
  Matcher(const tplm::TplmConfig& config, const MatcherConfig& matcher_config,
          uint64_t weight_seed);

  /// Resets the transformer to `pretrained`'s weights and re-randomizes the
  /// head (the paper does not warm-start between AL rounds).
  void ResetFromPretrained(tplm::TplmModel& pretrained);

  /// Trains on the labeled pairs (Eq. 6). `presumed_negatives` are unlabeled
  /// pairs treated as negatives for calibration (e.g. the tail of the
  /// previous round's candidate set — similar-looking pairs that are almost
  /// never duplicates). Returns mean loss of the final epoch.
  double Train(PairEncodingCache& pairs, const std::vector<data::LabeledPair>& labeled,
               const std::vector<data::PairId>& presumed_negatives = {});

  /// P(duplicate) for each pair.
  std::vector<float> PredictProbs(PairEncodingCache& pairs,
                                  const std::vector<data::PairId>& query);

  /// Tape-free batched probabilities through an *external* context — the
  /// serving entry point: many worker threads can score through one const
  /// Matcher concurrently, each with its own InferenceContext. Bit-identical
  /// to PredictProbs over the same encodings (the engine's batched ≡
  /// one-at-a-time contract).
  std::vector<float> PredictProbsWith(
      autograd::InferenceContext& ctx,
      const std::vector<const text::EncodedSequence*>& seqs) const;

  /// External-context counterpart of EmbedSingleMode (see PredictProbsWith).
  la::Matrix EmbedSingleModeWith(
      autograd::InferenceContext& ctx,
      const std::vector<const text::EncodedSequence*>& seqs) const;

  /// Writes the transformer + head weights (nn::Module wire format).
  void SaveWeights(util::BinaryWriter& writer);
  /// Restores weights written by SaveWeights; non-OK on name/shape mismatch
  /// or truncation, and no partial state is observable through the engine
  /// path on failure (callers discard the matcher).
  util::Status LoadWeights(util::BinaryReader& reader);

  /// BADGE gradient embeddings (Sec. 2.3.4): g = (p - ŷ) · [h ; 1] where h
  /// is the penultimate activation and ŷ the most likely label. One row per
  /// pair; dimension = dim + 1.
  la::Matrix BadgeEmbeddings(PairEncodingCache& pairs,
                             const std::vector<data::PairId>& query);

  /// Penultimate head activations h per pair (the representation the
  /// Core-Set and diverse-mini-batch selectors cover; Sener & Savarese use
  /// the same layer). One row per pair; dimension = dim.
  la::Matrix PairRepresentations(PairEncodingCache& pairs,
                                 const std::vector<data::PairId>& query);

  /// Frozen single-mode embeddings E(x) (Eq. 3) for a batch of pre-encoded
  /// sequences; one row per sequence. No gradients are recorded.
  la::Matrix EmbedSingleMode(const std::vector<const text::EncodedSequence*>& seqs);

  tplm::TplmModel& model() { return *model_; }
  const MatcherConfig& config() const { return config_; }

  /// Attaches an unowned worker pool: every tape this matcher records
  /// (training steps) and the inference engine thread their GEMMs/fan-outs
  /// through it. Bit-identical to inline execution; nullptr (default)
  /// detaches.
  void SetThreadPool(util::ThreadPool* pool) {
    pool_ = pool;
    infer_ctx_.SetThreadPool(pool);
  }

  /// Toggles the tape-free batched inference engine behind PredictProbs /
  /// BadgeEmbeddings / PairRepresentations / EmbedSingleMode (default on).
  /// `false` reverts to the one-sequence-per-Tape path — outputs are
  /// bit-identical either way (asserted in inference_test); the switch
  /// exists for parity tests and the tape-vs-engine bench axis. Training
  /// always uses the Tape.
  void SetInferenceEngine(bool on) { use_inference_ = on; }
  bool inference_engine() const { return use_inference_; }

  /// Numeric mode for the engine's linear sublayers (default fp32). int8 is
  /// NOT bit-identical — it is gated by the F1-parity test in the AL golden
  /// harness; training always stays fp32 on the Tape.
  void SetInferencePrecision(autograd::Precision precision) {
    infer_ctx_.SetPrecision(precision);
  }

 private:
  /// Probability and optional penultimate activation for one pair (the Tape
  /// fallback path).
  float ForwardProb(const text::EncodedSequence& seq, la::Matrix* penultimate);

  /// Gathers the cached pair encodings for `query` (in order).
  std::vector<const text::EncodedSequence*> GatherPairSeqs(
      PairEncodingCache& pairs, const std::vector<data::PairId>& query);

  /// Engine path shared by the prob/badge/representation entry points:
  /// batched pair features -> penultimate activations `h` (m, d) and, when
  /// `probs` is non-null, sigmoid probabilities. Const + external context so
  /// serving workers can run it concurrently (weights are read-only here).
  void InferHeadBatchWith(autograd::InferenceContext& ctx,
                          const std::vector<const text::EncodedSequence*>& seqs,
                          la::Matrix* h_out, std::vector<float>* probs) const;
  void InferHeadBatch(const std::vector<const text::EncodedSequence*>& seqs,
                      la::Matrix* h_out, std::vector<float>* probs);

  /// Piece-level perturbation of a pair encoding (train-time augmentation).
  text::EncodedSequence AugmentPair(const text::EncodedSequence& seq);

  MatcherConfig config_;
  std::unique_ptr<tplm::TplmModel> model_;
  std::unique_ptr<nn::Linear> head_dense_;
  std::unique_ptr<nn::Linear> head_out_;
  util::Rng rng_;
  util::ThreadPool* pool_ = nullptr;  // unowned; null = inline GEMMs
  autograd::InferenceContext infer_ctx_;  // tape-free activation arena
  bool use_inference_ = true;
};

}  // namespace dial::core

#endif  // DIAL_CORE_MATCHER_H_
