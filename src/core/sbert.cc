#include "core/sbert.h"

#include <algorithm>

#include "autograd/optim.h"
#include "autograd/ops.h"

namespace dial::core {

using autograd::Var;

SentenceBertBlocker::SentenceBertBlocker(const tplm::TplmConfig& config,
                                         const SbertConfig& sbert_config,
                                         uint64_t weight_seed)
    : config_(sbert_config), rng_(sbert_config.seed) {
  model_ = std::make_unique<tplm::TplmModel>("sbert_tplm", config, weight_seed);
  util::Rng head_rng(weight_seed ^ 0x77777777ULL);
  head_ = std::make_unique<nn::SentencePairHead>("sbert_head",
                                                 config.transformer.dim, head_rng);
}

void SentenceBertBlocker::ResetFromPretrained(tplm::TplmModel& pretrained,
                                              uint64_t salt) {
  model_->CopyWeightsFrom(pretrained);
  util::Rng head_rng(config_.seed ^ salt);
  head_ = std::make_unique<nn::SentencePairHead>(
      "sbert_head", model_->config().transformer.dim, head_rng);
}

double SentenceBertBlocker::Train(const RecordEncodings& encodings,
                                  const std::vector<data::LabeledPair>& labeled) {
  DIAL_CHECK(!labeled.empty());
  std::vector<autograd::ParamGroup> groups;
  groups.push_back({head_->Parameters(), config_.lr_head});
  groups.push_back({model_->Parameters(), config_.lr_transformer});
  autograd::AdamW optimizer(std::move(groups));
  const size_t steps_per_epoch =
      (labeled.size() + config_.batch_size - 1) / config_.batch_size;
  autograd::LinearSchedule schedule(
      static_cast<int64_t>(steps_per_epoch * config_.epochs));

  std::vector<size_t> order(labeled.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double last_epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t begin = 0; begin < order.size(); begin += config_.batch_size) {
      const size_t end = std::min(order.size(), begin + config_.batch_size);
      autograd::Tape tape;
      tape.SetThreadPool(pool_);
      nn::ForwardContext ctx{&tape, &rng_, /*training=*/true};
      std::vector<Var> logits;
      std::vector<float> targets;
      for (size_t i = begin; i < end; ++i) {
        const auto& lp = labeled[order[i]];
        Var u = model_->EncodeSingle(ctx, encodings.R(lp.pair.r));
        Var v = model_->EncodeSingle(ctx, encodings.S(lp.pair.s));
        logits.push_back(head_->Forward(ctx, u, v));
        targets.push_back(lp.is_duplicate ? 1.0f : 0.0f);
      }
      Var loss = autograd::BceWithLogits(autograd::ConcatRows(logits), targets);
      optimizer.ZeroGrad();
      tape.Backward(loss);
      optimizer.Step(schedule.Multiplier(optimizer.steps_taken()));
      epoch_loss += loss.scalar();
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
  }
  return last_epoch_loss;
}

la::Matrix SentenceBertBlocker::Embed(
    const std::vector<const text::EncodedSequence*>& seqs) {
  if (use_inference_) {
    la::Matrix out = model_->EncodeSingleBatch(infer_ctx_, seqs);
    la::NormalizeRowsInPlace(out);
    return out;
  }
  const size_t d = model_->config().transformer.dim;
  la::Matrix out(seqs.size(), d);
  for (size_t i = 0; i < seqs.size(); ++i) {
    autograd::Tape tape;
    tape.SetThreadPool(pool_);
    nn::ForwardContext ctx{&tape, &rng_, /*training=*/false};
    Var emb = model_->EncodeSingle(ctx, *seqs[i]);
    std::copy(emb.value().row(0), emb.value().row(0) + d, out.row(i));
  }
  la::NormalizeRowsInPlace(out);
  return out;
}

la::Matrix SentenceBertBlocker::EmbedR(const RecordEncodings& encodings) {
  std::vector<const text::EncodedSequence*> seqs;
  seqs.reserve(encodings.r_size());
  for (size_t i = 0; i < encodings.r_size(); ++i) seqs.push_back(&encodings.R(i));
  return Embed(seqs);
}

la::Matrix SentenceBertBlocker::EmbedS(const RecordEncodings& encodings) {
  std::vector<const text::EncodedSequence*> seqs;
  seqs.reserve(encodings.s_size());
  for (size_t i = 0; i < encodings.s_size(); ++i) seqs.push_back(&encodings.S(i));
  return Embed(seqs);
}

}  // namespace dial::core
