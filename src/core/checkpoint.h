#ifndef DIAL_CORE_CHECKPOINT_H_
#define DIAL_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "core/al_loop.h"
#include "util/rng.h"
#include "util/status.h"

/// \file
/// Checkpoint/resume for the active-learning loop. Human labeling sessions
/// are long-lived and interruptible; a checkpoint written after each round
/// captures everything the loop carries across rounds — the labeled set T
/// (with pseudo-label flags, in insertion order), the calibration pairs, the
/// loop RNG state, the per-round metrics, and the labeler's budget counter.
/// Models are deliberately NOT checkpointed: the paper's protocol retrains
/// from the pretrained weights every round (Sec. 4.2, "we do not warm start
/// the model parameters between active learning rounds"), so a resumed run
/// reproduces the uninterrupted run bit-for-bit from this state alone.
///
/// One exception joins the model-free rule in format v2: when
/// AlConfig::index_refresh is on, the blocker indexes DO carry trained
/// structure (centroids/codebooks/levels) across rounds, so the checkpoint
/// stores the IbcIndexCache warm state (VectorIndex::SaveWarmState — the
/// structure only, never the per-round vectors) and a resumed Refresh starts
/// from exactly what the uninterrupted run would have used.

namespace dial::core {

struct AlCheckpoint {
  /// Dataset the run was on; resume refuses a different dataset.
  std::string dataset_name;
  /// Fingerprint of the AL protocol fields of AlConfig; resume refuses a
  /// mismatching configuration.
  uint64_t config_fingerprint = 0;
  /// Next round to execute (rounds [0, next_round) are complete).
  uint32_t next_round = 0;
  uint64_t labels_used = 0;
  util::Rng::State rng_state;
  /// T, split as stored by LabeledSet (order within each list preserved).
  std::vector<data::LabeledSet::Entry> positives;
  std::vector<data::LabeledSet::Entry> negatives;
  /// Presumed-negative calibration pairs pending for the next round.
  std::vector<data::PairId> calibration;
  /// Metrics of completed rounds.
  std::vector<RoundMetrics> rounds;
};

/// Fingerprint over the protocol-relevant fields of the configuration
/// (budgets, candidate sizing, selector, blocking strategy, seeds). The
/// total round count is excluded so a finished budget can be extended;
/// model hyper-parameters are included via the matcher/blocker seeds only.
uint64_t AlConfigFingerprint(const AlConfig& config, const std::string& dataset);

/// Writes `checkpoint` to `path` (atomically: temp file + rename).
/// `index_cache` (optional) appends the blocker indexes' warm state.
util::Status SaveAlCheckpoint(const std::string& path,
                              const AlCheckpoint& checkpoint,
                              const IbcIndexCache* index_cache = nullptr);

/// Reads a checkpoint; non-OK on missing/corrupted/version-mismatched files.
/// `index_cache` (optional) receives the stored warm state (left empty when
/// the run checkpointed without one).
util::Status LoadAlCheckpoint(const std::string& path, AlCheckpoint* checkpoint,
                              IbcIndexCache* index_cache = nullptr);

/// Value-returning overload of the above.
util::StatusOr<AlCheckpoint> LoadAlCheckpoint(const std::string& path);

}  // namespace dial::core

#endif  // DIAL_CORE_CHECKPOINT_H_
