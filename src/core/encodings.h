#ifndef DIAL_CORE_ENCODINGS_H_
#define DIAL_CORE_ENCODINGS_H_

#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "text/vocab.h"

/// \file
/// Tokenization caches. Tokenizing is deterministic, so each record (single
/// mode) and each touched pair (paired mode) is encoded exactly once per
/// dataset run.

namespace dial::core {

/// Pre-encoded single-mode sequences for every record of R and S.
class RecordEncodings {
 public:
  RecordEncodings(const data::DatasetBundle& bundle, const text::SubwordVocab& vocab,
                  size_t max_single_len);

  const text::EncodedSequence& R(size_t i) const { return r_[i]; }
  const text::EncodedSequence& S(size_t i) const { return s_[i]; }
  size_t r_size() const { return r_.size(); }
  size_t s_size() const { return s_.size(); }

 private:
  std::vector<text::EncodedSequence> r_;
  std::vector<text::EncodedSequence> s_;
};

/// Lazily encodes pairs in paired mode, memoized by pair key.
class PairEncodingCache {
 public:
  PairEncodingCache(const data::DatasetBundle* bundle, const text::SubwordVocab* vocab,
                    size_t max_pair_len)
      : bundle_(bundle), vocab_(vocab), max_pair_len_(max_pair_len) {}

  const text::EncodedSequence& Get(data::PairId pair);

  size_t size() const { return cache_.size(); }
  const data::DatasetBundle* bundle() const { return bundle_; }

 private:
  const data::DatasetBundle* bundle_;
  const text::SubwordVocab* vocab_;
  size_t max_pair_len_;
  std::unordered_map<uint64_t, text::EncodedSequence> cache_;
};

}  // namespace dial::core

#endif  // DIAL_CORE_ENCODINGS_H_
