#ifndef DIAL_CORE_SELECTORS_H_
#define DIAL_CORE_SELECTORS_H_

#include <string>
#include <vector>

#include "core/ibc.h"
#include "la/matrix.h"
#include "util/rng.h"

/// \file
/// Example selection strategies (Sec. 2.3 and 4.7). All operate on the
/// candidate set produced by the blocker; the AL loop passes in the matcher
/// probabilities (and, for QBC/BADGE, the extra per-pair artifacts).

namespace dial::core {

enum class SelectorKind {
  kRandom,
  kGreedy,       // most similar pairs by candidate distance
  kUncertainty,  // entropy of matcher probability (Eq. 4) — DIAL's default
  kQbc,          // soft disagreement of a bootstrap matcher committee
  kPartition2,   // label p_lc ∪ n_lc (Sec. 2.3.3)
  kPartition4,   // additionally pseudo-label p_hc ∪ n_hc
  kBadge,        // gradient embeddings + k-means++ (Sec. 2.3.4)
  // Extension selectors from the deep-AL literature the paper cites as
  // compatible (Sec. 5.3): "most of these are compatible for use as example
  // selectors in DIAL".
  kCoreset,       // k-center greedy over pair representations ([59])
  kBald,          // mutual information over a committee's probabilities ([22])
  kDiverseBatch,  // uncertainty pre-filter + k-means diversity ([73])
};

SelectorKind ParseSelector(const std::string& text);
std::string SelectorName(SelectorKind kind);

/// All selectors, in enum order (used by the selector benches).
std::vector<SelectorKind> AllSelectors();

/// True if SelectPairs requires `committee_probs` for this kind.
bool SelectorNeedsCommitteeProbs(SelectorKind kind);
/// True if SelectPairs requires `embeddings` for this kind. kBadge expects
/// gradient embeddings; kCoreset/kDiverseBatch expect pair representations.
bool SelectorNeedsEmbeddings(SelectorKind kind);

/// Binary entropy of p (Eq. 4), in nats; 0 at p∈{0,1}.
double BinaryEntropy(double p);

struct SelectionResult {
  /// Indices into the candidate vector to send to the labeler.
  std::vector<size_t> to_label;
  /// Pairs Partition-4 adds to T without consuming budget: (index, label).
  std::vector<std::pair<size_t, bool>> pseudo_labels;
};

/// Selects up to `budget` of `eligible` (indices into `cand`).
/// - `probs` are matcher probabilities aligned with `cand` (required for all
///   kinds except kRandom / kGreedy / kCoreset).
/// - `committee_probs` (per member, aligned with cand) is required for
///   kQbc and kBald (for kBald the members act as posterior samples, as in
///   MC-dropout BALD).
/// - `embeddings` (rows aligned with `eligible`) is required for kBadge
///   (gradient embeddings), kCoreset and kDiverseBatch (representations).
SelectionResult SelectPairs(SelectorKind kind, const std::vector<Candidate>& cand,
                            const std::vector<float>& probs,
                            const std::vector<size_t>& eligible, size_t budget,
                            util::Rng& rng,
                            const std::vector<std::vector<float>>* committee_probs,
                            const la::Matrix* embeddings);

}  // namespace dial::core

#endif  // DIAL_CORE_SELECTORS_H_
