#include "core/encodings.h"

namespace dial::core {

RecordEncodings::RecordEncodings(const data::DatasetBundle& bundle,
                                 const text::SubwordVocab& vocab,
                                 size_t max_single_len) {
  r_.reserve(bundle.r_table.size());
  for (size_t i = 0; i < bundle.r_table.size(); ++i) {
    r_.push_back(vocab.EncodeSingle(bundle.r_table.TextOf(i), max_single_len));
  }
  s_.reserve(bundle.s_table.size());
  for (size_t i = 0; i < bundle.s_table.size(); ++i) {
    s_.push_back(vocab.EncodeSingle(bundle.s_table.TextOf(i), max_single_len));
  }
}

const text::EncodedSequence& PairEncodingCache::Get(data::PairId pair) {
  const uint64_t key = pair.Key();
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  text::EncodedSequence seq = vocab_->EncodePair(bundle_->r_table.TextOf(pair.r),
                                                 bundle_->s_table.TextOf(pair.s),
                                                 max_pair_len_);
  return cache_.emplace(key, std::move(seq)).first->second;
}

}  // namespace dial::core
