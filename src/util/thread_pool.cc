#include "util/thread_pool.h"

#include <algorithm>
#include <memory>

namespace dial::util {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  worker_ids_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    worker_ids_.push_back(workers_.back().get_id());
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(fn));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

bool ThreadPool::InWorkerThread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread::id& id : worker_ids_) {
    if (id == self) return true;
  }
  return false;
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || pool->InWorkerThread()) {
    fn(0, n);
    return;
  }
  // Per-call completion latch: waiting on the pool-global in_flight_ counter
  // (ThreadPool::Wait) is wrong once several threads share the pool — a
  // caller would block on *everyone's* tasks, and under a submitter that
  // never goes idle (the serve dispatcher) it would never return at all.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  const size_t chunks = std::min(n, pool->num_threads() * 4);
  const size_t chunk = (n + chunks - 1) / chunks;
  auto latch = std::make_shared<Latch>();
  latch->remaining = (n + chunk - 1) / chunk;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    pool->Submit([&fn, latch, begin, end] {
      fn(begin, end);
      std::unique_lock<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&latch] { return latch->remaining == 0; });
}

}  // namespace dial::util
