#include "util/crc32c.h"

#include <cstring>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace dial::util {

namespace {

using ExtendFn = uint32_t (*)(uint32_t state, const unsigned char* p, size_t n);

/// Raw-state workers: callers handle the init/final XOR, so chaining chunks
/// through any mix of implementations composes exactly.
uint32_t ExtendScalar(uint32_t state, const unsigned char* p, size_t n) {
  // Table built on first use from the reflected Castagnoli polynomial —
  // identical values to the classic precomputed tables, without 1 KiB of
  // literals to get wrong.
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  for (size_t i = 0; i < n; ++i) {
    state = table[(state ^ p[i]) & 0xFF] ^ (state >> 8);
  }
  return state;
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t state,
                                                    const unsigned char* p,
                                                    size_t n) {
#if defined(__x86_64__)
  uint64_t s = state;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    s = __builtin_ia32_crc32di(s, v);
    p += 8;
    n -= 8;
  }
  state = static_cast<uint32_t>(s);
#endif
  while (n > 0) {
    state = __builtin_ia32_crc32qi(state, *p);
    ++p;
    --n;
  }
  return state;
}

bool HwSupported() { return __builtin_cpu_supports("sse4.2") != 0; }
constexpr const char* kHwName = "sse4.2";

#elif defined(__aarch64__)

__attribute__((target("+crc"))) uint32_t ExtendHw(uint32_t state,
                                                  const unsigned char* p,
                                                  size_t n) {
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    state = __builtin_aarch64_crc32cx(state, v);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = __builtin_aarch64_crc32cb(state, *p);
    ++p;
    --n;
  }
  return state;
}

bool HwSupported() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return false;
#endif
}
constexpr const char* kHwName = "armv8-crc";

#else

uint32_t ExtendHw(uint32_t state, const unsigned char* p, size_t n) {
  return ExtendScalar(state, p, n);
}
bool HwSupported() { return false; }
constexpr const char* kHwName = "scalar";

#endif

ExtendFn ActiveExtend() {
  static const ExtendFn fn = HwSupported() ? &ExtendHw : &ExtendScalar;
  return fn;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint32_t state = ActiveExtend()(
      crc ^ 0xFFFFFFFFu, static_cast<const unsigned char*>(data), n);
  return state ^ 0xFFFFFFFFu;
}

const char* Crc32cImplName() { return HwSupported() ? kHwName : "scalar"; }

}  // namespace dial::util
