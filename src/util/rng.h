#ifndef DIAL_UTIL_RNG_H_
#define DIAL_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

/// \file
/// Deterministic random number generation. Every stochastic component in the
/// library owns an `Rng` seeded explicitly so that runs are reproducible
/// bit-for-bit regardless of platform (we do not use std::mt19937's
/// distribution objects, whose outputs are implementation-defined).

namespace dial::util {

/// splitmix64 — used to expand a single seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with helper distributions. Not thread-safe; clone or
/// `Fork()` per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Deterministically derives an independent stream (for per-thread or
  /// per-component use).
  Rng Fork() { return Rng(Next() ^ 0xabcdef0123456789ULL); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    DIAL_CHECK_GT(n, 0u);
    // Multiply-shift rejection-free mapping; bias is negligible for n << 2^64.
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    DIAL_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(Uniform()) * (hi - lo);
  }

  /// Standard normal via Box-Muller.
  double Normal() ;

  /// Bernoulli(p).
  bool Bernoulli(double p) { return Uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Samples k indices from [0, n) with replacement.
  std::vector<size_t> SampleWithReplacement(size_t n, size_t k);

  /// Complete engine state (xoshiro words + the Box-Muller spare), for
  /// checkpoint/resume. SetState restores a bit-identical stream.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool have_spare = false;
    double spare = 0.0;
  };

  State GetState() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.have_spare = have_spare_;
    st.spare = spare_;
    return st;
  }

  void SetState(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    have_spare_ = st.have_spare;
    spare_ = st.spare;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace dial::util

#endif  // DIAL_UTIL_RNG_H_
