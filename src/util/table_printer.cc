#include "util/table_printer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace dial::util {

void TablePrinter::AddRow(std::vector<std::string> row) {
  DIAL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToMarkdown() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string line = "|";
    for (const auto& cell : row) line += " " + cell + " |";
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t c = 0; c < header_.size(); ++c) rule += "---|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace dial::util
