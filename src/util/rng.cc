#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace dial::util {

double Rng::Normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_ = mag * std::sin(two_pi * u2);
  have_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DIAL_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<size_t> Rng::SampleWithReplacement(size_t n, size_t k) {
  DIAL_CHECK_GT(n, 0u);
  std::vector<size_t> out(k);
  for (auto& v : out) v = static_cast<size_t>(UniformInt(n));
  return out;
}

}  // namespace dial::util
