#ifndef DIAL_UTIL_STRING_UTIL_H_
#define DIAL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

/// \file
/// String helpers shared by the tokenizer, the classical similarity features
/// of the Random-Forest baseline, and the rule-based blocker.

namespace dial::util {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims = " \t\n");

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Levenshtein edit distance (unit costs). O(|a|*|b|) time, O(min) memory.
size_t Levenshtein(std::string_view a, std::string_view b);

/// 1 - edit_distance / max(len); 1.0 for two empty strings.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// Set of character q-grams of `s` (padding-free). Empty string => empty set.
std::unordered_set<std::string> CharQGrams(std::string_view s, size_t q);

/// Jaccard similarity of two sets of strings; 1.0 when both are empty.
double Jaccard(const std::unordered_set<std::string>& a,
               const std::unordered_set<std::string>& b);

/// Jaccard over whitespace tokens of two raw strings.
double TokenJaccard(std::string_view a, std::string_view b);

/// Overlap count of whitespace tokens.
size_t TokenOverlap(std::string_view a, std::string_view b);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...);

}  // namespace dial::util

#endif  // DIAL_UTIL_STRING_UTIL_H_
