#include "util/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include "util/crc32c.h"
#include "util/fault.h"

namespace dial::util {

namespace {
// Guards against absurd lengths from corrupted files (1 GiB of floats).
constexpr uint64_t kMaxVectorBytes = 1ull << 30;
}  // namespace

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : slash == 0 ? "/" : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError("cannot open directory for fsync: " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed for directory: " + dir);
  return Status::OK();
}

BinaryWriter::BinaryWriter(const std::string& path, uint32_t magic,
                           uint32_t version, bool with_crc)
    : path_(path), with_crc_(with_crc) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + path);
    return;
  }
  WriteU32(magic);
  WriteU32(version);
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (!status_.ok() || file_ == nullptr || n == 0) return;
  if (FaultInjector::Armed() &&
      FaultInjector::Global().ShouldFail(FaultSite::kFileWrite)) {
    status_ = Status::IoError("injected fault: short write to " + path_);
    return;
  }
  if (std::fwrite(data, 1, n, file_) != n) {
    status_ = Status::IoError("short write to " + path_);
    return;
  }
  bytes_written_ += n;
  if (with_crc_) crc_ = Crc32cExtend(crc_, data, n);
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteF64(double v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteFloats(v.data(), v.size());
}

void BinaryWriter::WriteFloats(const float* data, size_t n) {
  WriteU64(n);
  WriteBytes(data, n * sizeof(float));
}

void BinaryWriter::WriteU64Vector(const std::vector<uint64_t>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(uint64_t));
}

void BinaryWriter::WriteZeros(size_t n) {
  static constexpr char kZeros[8] = {0};
  while (n > 0) {
    const size_t chunk = n < sizeof(kZeros) ? n : sizeof(kZeros);
    WriteBytes(kZeros, chunk);
    n -= chunk;
  }
}

Status BinaryWriter::Finish(bool durable) {
  if (file_ != nullptr) {
    if (with_crc_) {
      // The trailer covers everything before it and is excluded from the
      // running checksum (disarm before emitting it).
      const uint32_t crc = crc_;
      with_crc_ = false;
      WriteU32(kCrcTrailerMagic);
      WriteU32(crc);
    }
    if (durable && status_.ok()) {
      if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
        status_ = Status::IoError("fsync failed for " + path_);
      }
    }
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed for " + path_);
    }
    file_ = nullptr;
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path, uint32_t magic,
                           uint32_t expected_version)
    : BinaryReader(path, magic, expected_version, expected_version,
                   /*crc_from_version=*/UINT32_MAX) {}

BinaryReader::BinaryReader(const std::string& path, uint32_t magic,
                           uint32_t min_version, uint32_t max_version,
                           uint32_t crc_from_version) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::NotFound("cannot open for read: " + path);
    return;
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    status_ = Status::IoError("cannot seek in " + path);
    return;
  }
  const long size = std::ftell(file_);
  if (size < 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    status_ = Status::IoError("cannot determine size of " + path);
    return;
  }
  file_size_ = static_cast<uint64_t>(size);
  const uint32_t got_magic = ReadU32();
  version_ = ReadU32();
  if (!status_.ok()) return;
  if (got_magic != magic) {
    status_ = Status::Corruption("bad magic in " + path);
    return;
  }
  if (version_ < min_version || version_ > max_version) {
    status_ = Status::Corruption("unsupported version in " + path);
    return;
  }
  if (version_ >= crc_from_version) VerifyCrcTrailer(path);
}

void BinaryReader::VerifyCrcTrailer(const std::string& path) {
  // Whole-file verify before any field parsing: a file that fails its
  // checksum never gets a chance to deserialize plausibly-bounded garbage.
  if (file_size_ < 8 + kCrcTrailerBytes) {
    status_ = Status::Corruption("file too small for CRC trailer: " + path);
    return;
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    status_ = Status::IoError("cannot seek in " + path);
    return;
  }
  const uint64_t body = file_size_ - kCrcTrailerBytes;
  uint32_t crc = 0;
  char buf[1 << 16];
  uint64_t left = body;
  while (left > 0) {
    const size_t chunk =
        left < sizeof(buf) ? static_cast<size_t>(left) : sizeof(buf);
    if (FaultInjector::Armed() &&
        FaultInjector::Global().ShouldFail(FaultSite::kFileRead)) {
      status_ = Status::IoError("injected fault: read error in " + path);
      return;
    }
    if (std::fread(buf, 1, chunk, file_) != chunk) {
      status_ = Status::Corruption("short read verifying " + path);
      return;
    }
    crc = Crc32cExtend(crc, buf, chunk);
    left -= chunk;
  }
  uint32_t trailer_magic = 0;
  uint32_t stored_crc = 0;
  if (std::fread(&trailer_magic, 1, 4, file_) != 4 ||
      std::fread(&stored_crc, 1, 4, file_) != 4) {
    status_ = Status::Corruption("short read verifying " + path);
    return;
  }
  if (trailer_magic != kCrcTrailerMagic) {
    status_ = Status::Corruption("missing CRC trailer in " + path);
    return;
  }
  if (stored_crc != crc) {
    status_ = Status::Corruption("CRC32C mismatch in " + path);
    return;
  }
  // Hide the trailer from payload reads and rewind to just past the header.
  file_size_ = body;
  if (std::fseek(file_, 8, SEEK_SET) != 0) {
    status_ = Status::IoError("cannot seek in " + path);
    return;
  }
  offset_ = 8;
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

uint64_t BinaryReader::RemainingBytes() const {
  return offset_ <= file_size_ ? file_size_ - offset_ : 0;
}

bool BinaryReader::ReadBytes(void* data, size_t n) {
  if (!status_.ok() || file_ == nullptr) return false;
  if (n == 0) return true;
  if (FaultInjector::Armed() &&
      FaultInjector::Global().ShouldFail(FaultSite::kFileRead)) {
    status_ = Status::IoError("injected fault: read error");
    return false;
  }
  if (n > RemainingBytes() || std::fread(data, 1, n, file_) != n) {
    status_ = Status::Corruption("short read");
    return false;
  }
  offset_ += n;
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadF64() {
  double v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxVectorBytes || n > RemainingBytes()) {
    status_ = Status::Corruption("string length exceeds file size");
    return {};
  }
  std::string s(n, '\0');
  ReadBytes(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxVectorBytes / sizeof(float) ||  // division avoids n*4 overflow
      n * sizeof(float) > RemainingBytes()) {
    status_ = Status::Corruption("vector length exceeds file size");
    return {};
  }
  std::vector<float> v(n);
  ReadBytes(v.data(), n * sizeof(float));
  return v;
}

std::vector<uint64_t> BinaryReader::ReadU64Vector() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  // Division-based compare: a corrupted length near 2^64 would overflow the
  // multiplication n * 8 to a small value and sail past a product check.
  if (n > kMaxVectorBytes / sizeof(uint64_t) ||
      n * sizeof(uint64_t) > RemainingBytes()) {
    status_ = Status::Corruption("vector length exceeds file size");
    return {};
  }
  std::vector<uint64_t> v(n);
  ReadBytes(v.data(), n * sizeof(uint64_t));
  return v;
}

}  // namespace dial::util
