#include "util/serialize.h"

namespace dial::util {

namespace {
// Guards against absurd lengths from corrupted files (1 GiB of floats).
constexpr uint64_t kMaxVectorBytes = 1ull << 30;
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path, uint32_t magic, uint32_t version)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + path);
    return;
  }
  WriteU32(magic);
  WriteU32(version);
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (!status_.ok() || file_ == nullptr || n == 0) return;
  if (std::fwrite(data, 1, n, file_) != n) {
    status_ = Status::IoError("short write to " + path_);
    return;
  }
  bytes_written_ += n;
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteF64(double v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteFloats(v.data(), v.size());
}

void BinaryWriter::WriteFloats(const float* data, size_t n) {
  WriteU64(n);
  WriteBytes(data, n * sizeof(float));
}

void BinaryWriter::WriteU64Vector(const std::vector<uint64_t>& v) {
  WriteU64(v.size());
  WriteBytes(v.data(), v.size() * sizeof(uint64_t));
}

void BinaryWriter::WriteZeros(size_t n) {
  static constexpr char kZeros[8] = {0};
  while (n > 0) {
    const size_t chunk = n < sizeof(kZeros) ? n : sizeof(kZeros);
    WriteBytes(kZeros, chunk);
    n -= chunk;
  }
}

Status BinaryWriter::Finish() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed for " + path_);
    }
    file_ = nullptr;
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path, uint32_t magic,
                           uint32_t expected_version) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::NotFound("cannot open for read: " + path);
    return;
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    status_ = Status::IoError("cannot seek in " + path);
    return;
  }
  const long size = std::ftell(file_);
  if (size < 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    status_ = Status::IoError("cannot determine size of " + path);
    return;
  }
  file_size_ = static_cast<uint64_t>(size);
  const uint32_t got_magic = ReadU32();
  const uint32_t got_version = ReadU32();
  if (!status_.ok()) return;
  if (got_magic != magic) {
    status_ = Status::Corruption("bad magic in " + path);
  } else if (got_version != expected_version) {
    status_ = Status::Corruption("unsupported version in " + path);
  }
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

uint64_t BinaryReader::RemainingBytes() const {
  return offset_ <= file_size_ ? file_size_ - offset_ : 0;
}

bool BinaryReader::ReadBytes(void* data, size_t n) {
  if (!status_.ok() || file_ == nullptr) return false;
  if (n == 0) return true;
  if (n > RemainingBytes() || std::fread(data, 1, n, file_) != n) {
    status_ = Status::Corruption("short read");
    return false;
  }
  offset_ += n;
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadF64() {
  double v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxVectorBytes || n > RemainingBytes()) {
    status_ = Status::Corruption("string length exceeds file size");
    return {};
  }
  std::string s(n, '\0');
  ReadBytes(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxVectorBytes / sizeof(float) ||  // division avoids n*4 overflow
      n * sizeof(float) > RemainingBytes()) {
    status_ = Status::Corruption("vector length exceeds file size");
    return {};
  }
  std::vector<float> v(n);
  ReadBytes(v.data(), n * sizeof(float));
  return v;
}

std::vector<uint64_t> BinaryReader::ReadU64Vector() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  // Division-based compare: a corrupted length near 2^64 would overflow the
  // multiplication n * 8 to a small value and sail past a product check.
  if (n > kMaxVectorBytes / sizeof(uint64_t) ||
      n * sizeof(uint64_t) > RemainingBytes()) {
    status_ = Status::Corruption("vector length exceeds file size");
    return {};
  }
  std::vector<uint64_t> v(n);
  ReadBytes(v.data(), n * sizeof(uint64_t));
  return v;
}

}  // namespace dial::util
