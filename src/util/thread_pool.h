#ifndef DIAL_UTIL_THREAD_POOL_H_
#define DIAL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// \file
/// A small fixed-size worker pool plus a `ParallelFor` helper used for
/// data-parallel gradient accumulation and batched index probes. On this
/// project's reference hardware (2 cores) parallelism is a modest win; all
/// callers also work with `num_threads == 0` (inline execution).

namespace dial::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` means every Submit
  /// runs inline on the caller thread (useful for deterministic tests).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns immediately (or runs inline if no workers).
  void Submit(std::function<void()> fn);

  /// Blocks until the pool is fully drained (no queued or running tasks from
  /// *any* submitter). Only meaningful for a caller that owns all outstanding
  /// work — with concurrent submitters this waits on strangers' tasks and may
  /// never return if the pool never goes idle. `ParallelFor` therefore uses a
  /// per-call completion latch instead of this.
  void Wait();

  /// True when the calling thread is one of this pool's workers. Used by
  /// `ParallelFor` to degrade to inline execution on nested calls — a worker
  /// that Submit()s subtasks and then Wait()s would deadlock once every
  /// worker is parked in Wait().
  bool InWorkerThread() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::vector<std::thread::id> worker_ids_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Splits [0, n) into contiguous chunks and runs `fn(begin, end)` on the
/// pool; blocks until complete. Runs inline with a null pool, with fewer
/// than two workers, or when called from one of the pool's own workers
/// (nested data-parallelism degrades gracefully instead of deadlocking).
/// Chunk boundaries never change results for callers whose iterations are
/// independent, which is what the index layer's determinism guarantee
/// (threaded Search bit-identical to inline) rests on.
///
/// Safe with concurrent submitters: completion is tracked by a per-call
/// latch, so each caller returns exactly when its own chunks finish, even
/// while other threads keep the pool busy.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace dial::util

#endif  // DIAL_UTIL_THREAD_POOL_H_
