#ifndef DIAL_UTIL_SERIALIZE_H_
#define DIAL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Little binary writer/reader with a magic header + format version, used to
/// persist pretrained model weights (`tplm::ModelCache`). All multi-byte
/// values are little-endian (the only platform we target); readers validate
/// lengths so truncated/corrupted files fail with `Status` rather than UB.

namespace dial::util {

/// Streams POD values and vectors to a file. Any I/O failure latches into an
/// error status returned by `Finish()`.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header.
  BinaryWriter(const std::string& path, uint32_t magic, uint32_t version);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  /// Same wire format as WriteFloatVector (u64 length + raw floats), for
  /// storage that is not a plain std::vector<float> (e.g. la::Matrix's
  /// aligned backing store).
  void WriteFloats(const float* data, size_t n);
  /// u64 length + raw u64s — offset tables and id lists (record packs).
  void WriteU64Vector(const std::vector<uint64_t>& v);
  /// `n` zero bytes, no length prefix — alignment padding (record packs).
  void WriteZeros(size_t n);

  /// Bytes emitted so far, header included — the write cursor. This is what
  /// lets a writer record absolute offsets (the record-pack offset table)
  /// without re-stat()ing the file.
  uint64_t BytesWritten() const { return bytes_written_; }

  /// Closes the file and reports the first error encountered, if any.
  Status Finish();

 private:
  void WriteBytes(const void* data, size_t n);

  std::FILE* file_ = nullptr;
  Status status_;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// Reads a file produced by BinaryWriter, validating magic and version.
class BinaryReader {
 public:
  BinaryReader(const std::string& path, uint32_t magic, uint32_t expected_version);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  /// Non-OK if the file failed to open or validate; check before reading.
  const Status& status() const { return status_; }

  /// Bytes left between the read cursor and end-of-file. Length-prefixed
  /// reads validate their length against this before allocating, so a
  /// corrupted length field fails cleanly instead of reserving up to the
  /// 1 GiB sanity cap.
  uint64_t RemainingBytes() const;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<uint64_t> ReadU64Vector();

 private:
  bool ReadBytes(void* data, size_t n);

  std::FILE* file_ = nullptr;
  Status status_;
  uint64_t file_size_ = 0;
  uint64_t offset_ = 0;
};

}  // namespace dial::util

#endif  // DIAL_UTIL_SERIALIZE_H_
