#ifndef DIAL_UTIL_SERIALIZE_H_
#define DIAL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Little binary writer/reader with a magic header + format version, used to
/// persist model weights, checkpoints, serving bundles, and record packs.
/// All multi-byte values are little-endian (the only platform we target);
/// readers validate lengths so truncated/corrupted files fail with `Status`
/// rather than UB.
///
/// Integrity: a writer opened `with_crc` checksums every byte it emits
/// (CRC32C, incrementally — no second pass) and `Finish` appends an 8-byte
/// trailer `[u32 kCrcTrailerMagic][u32 crc]`. A reader given a
/// `crc_from_version` verifies the whole file against the trailer up front
/// — before any field is parsed — so an interior bit-flip fails fast with
/// `kCorruption` instead of deserializing garbage that happens to pass the
/// per-field bounds checks. The trailer is then hidden from `RemainingBytes`
/// so format parsers never see it.

namespace dial::util {

/// Trailer marker ("CRC3" little-endian) preceding the stored CRC32C.
inline constexpr uint32_t kCrcTrailerMagic = 0x33435243u;

/// Trailer size: u32 marker + u32 CRC32C of everything before the trailer.
inline constexpr uint64_t kCrcTrailerBytes = 8;

/// fsyncs the directory containing `path`, making a just-renamed entry
/// durable (rename + file fsync alone leave the *directory entry* volatile).
Status SyncParentDir(const std::string& path);

/// Streams POD values and vectors to a file. Any I/O failure latches into an
/// error status returned by `Finish()`.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header. `with_crc` arms the
  /// incremental checksum; Finish then appends the CRC trailer.
  BinaryWriter(const std::string& path, uint32_t magic, uint32_t version,
               bool with_crc = false);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  /// Same wire format as WriteFloatVector (u64 length + raw floats), for
  /// storage that is not a plain std::vector<float> (e.g. la::Matrix's
  /// aligned backing store).
  void WriteFloats(const float* data, size_t n);
  /// u64 length + raw u64s — offset tables and id lists (record packs).
  void WriteU64Vector(const std::vector<uint64_t>& v);
  /// `n` zero bytes, no length prefix — alignment padding (record packs).
  void WriteZeros(size_t n);

  /// Bytes emitted so far, header included — the write cursor. This is what
  /// lets a writer record absolute offsets (the record-pack offset table)
  /// without re-stat()ing the file.
  uint64_t BytesWritten() const { return bytes_written_; }

  /// Appends the CRC trailer (when armed), closes the file, and reports the
  /// first error encountered. `durable` additionally fsyncs file contents
  /// before close — pair with SyncParentDir after a rename for crash-safe
  /// replace-by-rename saves.
  Status Finish(bool durable = false);

 private:
  void WriteBytes(const void* data, size_t n);

  std::FILE* file_ = nullptr;
  Status status_;
  std::string path_;
  uint64_t bytes_written_ = 0;
  bool with_crc_ = false;
  uint32_t crc_ = 0;
};

/// Reads a file produced by BinaryWriter, validating magic and version —
/// and, for versions carrying it, the CRC trailer (verified up front).
class BinaryReader {
 public:
  /// Exact-version reader for CRC-less legacy formats.
  BinaryReader(const std::string& path, uint32_t magic, uint32_t expected_version);

  /// Accepts versions in [min_version, max_version]; files at versions >=
  /// crc_from_version must carry a valid CRC trailer (whole-file verify
  /// before the first field read; the trailer is then invisible to
  /// RemainingBytes and payload reads). Older versions load unverified —
  /// the back-compat path.
  BinaryReader(const std::string& path, uint32_t magic, uint32_t min_version,
               uint32_t max_version, uint32_t crc_from_version);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  /// Non-OK if the file failed to open or validate; check before reading.
  const Status& status() const { return status_; }

  /// The file's format version (valid once status() is OK).
  uint32_t version() const { return version_; }

  /// Bytes left between the read cursor and the end of the payload (the CRC
  /// trailer, when present, is excluded). Length-prefixed reads validate
  /// their length against this before allocating, so a corrupted length
  /// field fails cleanly instead of reserving up to the 1 GiB sanity cap.
  uint64_t RemainingBytes() const;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<uint64_t> ReadU64Vector();

 private:
  bool ReadBytes(void* data, size_t n);
  void VerifyCrcTrailer(const std::string& path);

  std::FILE* file_ = nullptr;
  Status status_;
  uint64_t file_size_ = 0;
  uint64_t offset_ = 0;
  uint32_t version_ = 0;
};

}  // namespace dial::util

#endif  // DIAL_UTIL_SERIALIZE_H_
