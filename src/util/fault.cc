#include "util/fault.h"

#include <unistd.h>

#include <cstdlib>

#include "util/logging.h"

namespace dial::util {

namespace {

/// Injection storms must terminate even at probability 1.0: retry loops
/// (EINTR simulation) would otherwise spin forever. Real storms end too.
constexpr uint64_t kMaxConsecutiveInjections = 1000;

constexpr const char* kSiteNames[kNumFaultSites] = {
    "file_write", "file_read", "socket_send", "socket_recv",
    "scheduler_submit"};

/// xorshift64* — tiny, seedable, and good enough to decorrelate sites.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  return kSiteNames[static_cast<int>(site)];
}

bool ParseFaultSite(const std::string& name, FaultSite* site) {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    if (name == kSiteNames[i]) {
      *site = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

bool FaultInjector::Armed() { return armed_.load(std::memory_order_relaxed); }

FaultInjector::FaultInjector() {
  uint64_t seed = 1;
  if (const char* env = std::getenv("DIAL_FAULT_SEED"); env != nullptr) {
    seed = std::strtoull(env, nullptr, 10);
    if (seed == 0) seed = 1;  // xorshift's absorbing state
  }
  const char* spec = std::getenv("DIAL_FAULT_SITES");
  const Status status = Configure(seed, spec != nullptr ? spec : "");
  if (!status.ok()) {
    DIAL_LOG_WARNING << "ignoring DIAL_FAULT_SITES: " << status.ToString();
  }
}

Status FaultInjector::Configure(uint64_t seed, const std::string& spec) {
  std::unique_lock<std::mutex> lock(mu_);
  rng_state_ = seed != 0 ? seed : 1;
  for (auto& site : sites_) site = SiteState{};
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec entry missing '=': " + entry);
    }
    FaultSite site;
    if (!ParseFaultSite(entry.substr(0, eq), &site)) {
      return Status::InvalidArgument("unknown fault site: " +
                                     entry.substr(0, eq));
    }
    SiteState& state = sites_[static_cast<int>(site)];
    const std::string value = entry.substr(eq + 1);
    if (value.rfind("fail@", 0) == 0 || value.rfind("crash@", 0) == 0) {
      const size_t at = value.find('@');
      char* end = nullptr;
      const uint64_t n = std::strtoull(value.c_str() + at + 1, &end, 10);
      if (n == 0 || end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad fault count in: " + entry);
      }
      (value[0] == 'f' ? state.fail_at : state.crash_at) = n;
    } else {
      char* end = nullptr;
      const double p = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("bad fault probability in: " + entry);
      }
      state.probability = p;
    }
  }
  RecomputeArmedLocked();
  return Status::OK();
}

void FaultInjector::SetSeed(uint64_t seed) {
  std::unique_lock<std::mutex> lock(mu_);
  rng_state_ = seed != 0 ? seed : 1;
}

void FaultInjector::SetProbability(FaultSite site, double p) {
  std::unique_lock<std::mutex> lock(mu_);
  sites_[static_cast<int>(site)].probability = p;
  RecomputeArmedLocked();
}

void FaultInjector::FailNth(FaultSite site, uint64_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  sites_[static_cast<int>(site)].fail_at = n;
  RecomputeArmedLocked();
}

void FaultInjector::CrashNth(FaultSite site, uint64_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  sites_[static_cast<int>(site)].crash_at = n;
  RecomputeArmedLocked();
}

void FaultInjector::Reset() {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& site : sites_) site = SiteState{};
  RecomputeArmedLocked();
}

void FaultInjector::RecomputeArmedLocked() {
  bool armed = false;
  for (const auto& site : sites_) {
    armed = armed || site.probability > 0.0 || site.fail_at > 0 ||
            site.crash_at > 0;
  }
  armed_.store(armed, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(FaultSite which) {
  std::unique_lock<std::mutex> lock(mu_);
  SiteState& site = sites_[static_cast<int>(which)];
  ++site.calls;
  bool inject = false;
  if (site.crash_at > 0 && --site.crash_at == 0) {
    // Simulated crash: no flushing, no destructors — the point is to leave
    // whatever half-written state the OS happens to have.
    ::_exit(kCrashExitCode);
  }
  if (site.fail_at > 0 && --site.fail_at == 0) inject = true;
  if (!inject && site.probability > 0.0 &&
      site.consecutive < kMaxConsecutiveInjections) {
    const double u =
        static_cast<double>(NextRandom(&rng_state_) >> 11) * 0x1.0p-53;
    inject = u < site.probability;
  }
  if (inject) {
    ++site.injected;
    ++site.consecutive;
  } else {
    site.consecutive = 0;
  }
  return inject;
}

uint64_t FaultInjector::calls(FaultSite site) const {
  std::unique_lock<std::mutex> lock(mu_);
  return sites_[static_cast<int>(site)].calls;
}

uint64_t FaultInjector::injected(FaultSite site) const {
  std::unique_lock<std::mutex> lock(mu_);
  return sites_[static_cast<int>(site)].injected;
}

}  // namespace dial::util
