#ifndef DIAL_UTIL_CRC32C_H_
#define DIAL_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC32C (Castagnoli) — the checksum guarding every persisted artifact
/// (serving bundle, AL checkpoint, record pack, model cache). Hardware
/// accelerated where the CPU offers it (SSE4.2 `crc32` on x86, the ARMv8
/// CRC extension on aarch64) with a table-driven scalar fallback, selected
/// once at first use via the same detect-then-dispatch idea as `la/arch.h`
/// (a single function pointer here — checksums need no per-tier TUs).
///
/// `Crc32c(p, n)` is the standard finalized form (init/final XOR with
/// 0xFFFFFFFF): `Crc32c("123456789") == 0xE3069283`. `Crc32cExtend` chains:
/// `Crc32cExtend(Crc32c(a), b)` equals the CRC of the concatenation, which
/// is what lets `BinaryWriter` checksum incrementally as bytes stream out.

namespace dial::util {

/// CRC32C of `crc`'s stream extended by `n` more bytes. Pass the previous
/// finalized value (0 for an empty prefix).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Finalized CRC32C of one buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Active implementation, for logs/tests: "sse4.2", "armv8-crc", "scalar".
const char* Crc32cImplName();

}  // namespace dial::util

#endif  // DIAL_UTIL_CRC32C_H_
