#ifndef DIAL_UTIL_TIMER_H_
#define DIAL_UTIL_TIMER_H_

#include <chrono>

/// \file
/// Wall-clock timing used by the benchmark harnesses and the Table 9/10
/// runtime-breakdown instrumentation.

namespace dial::util {

/// Monotonic stopwatch; starts running on construction.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows (used for the
/// per-operation breakdown in the Table 9 reproduction).
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_ += timer_.Seconds(); }
  double TotalSeconds() const { return total_; }
  void Reset() { total_ = 0.0; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

}  // namespace dial::util

#endif  // DIAL_UTIL_TIMER_H_
