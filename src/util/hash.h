#ifndef DIAL_UTIL_HASH_H_
#define DIAL_UTIL_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// FNV-1a hashing used for config fingerprints (model cache keys) and the
/// pair-dedup hash sets in blocking.

namespace dial::util {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t Fnv1a(std::string_view data, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Packs a pair of 32-bit ids into a single key (used for R×S pair sets).
inline uint64_t PairKey(uint32_t r, uint32_t s) {
  return (static_cast<uint64_t>(r) << 32) | s;
}

inline std::string HexDigest(uint64_t h) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace dial::util

#endif  // DIAL_UTIL_HASH_H_
