#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dial::util {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  const size_t m = std::max(a.size(), b.size());
  if (m == 0) return 1.0;
  return 1.0 - static_cast<double>(Levenshtein(a, b)) / static_cast<double>(m);
}

std::unordered_set<std::string> CharQGrams(std::string_view s, size_t q) {
  std::unordered_set<std::string> grams;
  if (s.size() < q) {
    if (!s.empty()) grams.emplace(s);
    return grams;
  }
  for (size_t i = 0; i + q <= s.size(); ++i) grams.emplace(s.substr(i, q));
  return grams;
}

double Jaccard(const std::unordered_set<std::string>& a,
               const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& big = a.size() <= b.size() ? b : a;
  size_t inter = 0;
  for (const auto& x : small) inter += big.count(x);
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

double TokenJaccard(std::string_view a, std::string_view b) {
  const auto ta = Split(a);
  const auto tb = Split(b);
  return Jaccard(std::unordered_set<std::string>(ta.begin(), ta.end()),
                 std::unordered_set<std::string>(tb.begin(), tb.end()));
}

size_t TokenOverlap(std::string_view a, std::string_view b) {
  const auto ta = Split(a);
  const auto tb = Split(b);
  const std::unordered_set<std::string> sa(ta.begin(), ta.end());
  size_t n = 0;
  std::unordered_set<std::string> seen;
  for (const auto& t : tb) {
    if (sa.count(t) && seen.insert(t).second) ++n;
  }
  return n;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<size_t>(std::max(n, 0)), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace dial::util
