#include "util/status.h"

namespace dial::util {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dial::util
