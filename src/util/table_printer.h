#ifndef DIAL_UTIL_TABLE_PRINTER_H_
#define DIAL_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

/// \file
/// ASCII table renderer used by every bench harness to print paper-style
/// result tables (and by EXPERIMENTS.md generation).

namespace dial::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 1);

  /// Renders with column alignment, `|` separators, and a header rule.
  std::string ToString() const;

  /// Renders as GitHub-flavoured markdown (for EXPERIMENTS.md).
  std::string ToMarkdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dial::util

#endif  // DIAL_UTIL_TABLE_PRINTER_H_
