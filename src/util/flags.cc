#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace dial::util {

int64_t* FlagSet::AddInt(const std::string& name, int64_t default_value,
                         const std::string& help) {
  int_storage_.push_back(std::make_unique<int64_t>(default_value));
  Flag f;
  f.kind = Kind::kInt;
  f.help = help;
  f.default_text = std::to_string(default_value);
  f.int_value = int_storage_.back().get();
  flags_[name] = f;
  return f.int_value;
}

double* FlagSet::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  double_storage_.push_back(std::make_unique<double>(default_value));
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.default_text = StrFormat("%g", default_value);
  f.double_value = double_storage_.back().get();
  flags_[name] = f;
  return f.double_value;
}

bool* FlagSet::AddBool(const std::string& name, bool default_value,
                       const std::string& help) {
  bool_storage_.push_back(std::make_unique<bool>(default_value));
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.default_text = default_value ? "true" : "false";
  f.bool_value = bool_storage_.back().get();
  flags_[name] = f;
  return f.bool_value;
}

std::string* FlagSet::AddString(const std::string& name,
                                const std::string& default_value,
                                const std::string& help) {
  string_storage_.push_back(std::make_unique<std::string>(default_value));
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.default_text = default_value;
  f.string_value = string_storage_.back().get();
  flags_[name] = f;
  return f.string_value;
}

Status FlagSet::SetFromText(const std::string& name, Flag& flag,
                            const std::string& text) {
  // strtoll/strtod accept leading garbage tolerance we don't want: require a
  // non-empty value that parses in full, so `--workers=` and `--workers=8x`
  // are errors instead of silently becoming 0 / 8.
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kInt: {
      if (text.empty()) {
        return Status::InvalidArgument("empty value for --" + name);
      }
      errno = 0;
      const int64_t v = std::strtoll(text.c_str(), &end, 10);
      if (end != text.c_str() + text.size() || errno == ERANGE) {
        return Status::InvalidArgument("bad integer value for --" + name + ": " +
                                       text);
      }
      *flag.int_value = v;
      break;
    }
    case Kind::kDouble: {
      if (text.empty()) {
        return Status::InvalidArgument("empty value for --" + name);
      }
      errno = 0;
      const double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size() || errno == ERANGE) {
        return Status::InvalidArgument("bad numeric value for --" + name + ": " +
                                       text);
      }
      *flag.double_value = v;
      break;
    }
    case Kind::kBool:
      if (text == "true" || text == "1") {
        *flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        *flag.bool_value = false;
      } else {
        return Status::InvalidArgument("bad boolean value for --" + name + ": " +
                                       text);
      }
      break;
    case Kind::kString:
      *flag.string_value = text;
      break;
  }
  return Status::OK();
}

Status FlagSet::TryParse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value_text;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value_text = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    bool negated = false;
    if (!flags_.count(arg) && StartsWith(arg, "no-")) {
      negated = true;
      arg = arg.substr(3);
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return Status::InvalidArgument("Unknown flag --" + arg);
    }
    Flag& flag = it->second;
    if (flag.kind == Kind::kBool && !has_value) {
      *flag.bool_value = !negated;
      continue;
    }
    if (negated) {
      return Status::InvalidArgument("--no- prefix is only valid for boolean flags: --no-" +
                                     arg);
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + arg + " expects a value");
      }
      value_text = argv[++i];
    }
    DIAL_RETURN_IF_ERROR(SetFromText(arg, flag, value_text));
  }
  return Status::OK();
}

void FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help" || std::string(argv[i]) == "-h") {
      std::fprintf(stderr, "%s", Usage(argv[0]).c_str());
      std::exit(0);
    }
  }
  const Status s = TryParse(argc, argv);
  if (!s.ok()) {
    DIAL_LOG_FATAL << s.message() << "\n" << Usage(argv[0]);
  }
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                     flag.default_text.c_str());
  }
  return out;
}

}  // namespace dial::util
