#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace dial::util {

int64_t* FlagSet::AddInt(const std::string& name, int64_t default_value,
                         const std::string& help) {
  int_storage_.push_back(std::make_unique<int64_t>(default_value));
  Flag f;
  f.kind = Kind::kInt;
  f.help = help;
  f.default_text = std::to_string(default_value);
  f.int_value = int_storage_.back().get();
  flags_[name] = f;
  return f.int_value;
}

double* FlagSet::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  double_storage_.push_back(std::make_unique<double>(default_value));
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.default_text = StrFormat("%g", default_value);
  f.double_value = double_storage_.back().get();
  flags_[name] = f;
  return f.double_value;
}

bool* FlagSet::AddBool(const std::string& name, bool default_value,
                       const std::string& help) {
  bool_storage_.push_back(std::make_unique<bool>(default_value));
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.default_text = default_value ? "true" : "false";
  f.bool_value = bool_storage_.back().get();
  flags_[name] = f;
  return f.bool_value;
}

std::string* FlagSet::AddString(const std::string& name,
                                const std::string& default_value,
                                const std::string& help) {
  string_storage_.push_back(std::make_unique<std::string>(default_value));
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.default_text = default_value;
  f.string_value = string_storage_.back().get();
  flags_[name] = f;
  return f.string_value;
}

void FlagSet::SetFromText(const std::string& name, Flag& flag,
                          const std::string& text) {
  switch (flag.kind) {
    case Kind::kInt:
      *flag.int_value = std::strtoll(text.c_str(), nullptr, 10);
      break;
    case Kind::kDouble:
      *flag.double_value = std::strtod(text.c_str(), nullptr);
      break;
    case Kind::kBool:
      if (text == "true" || text == "1") {
        *flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        *flag.bool_value = false;
      } else {
        DIAL_LOG_FATAL << "Bad boolean value for --" << name << ": " << text;
      }
      break;
    case Kind::kString:
      *flag.string_value = text;
      break;
  }
}

void FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", Usage(argv[0]).c_str());
      std::exit(0);
    }
    if (!StartsWith(arg, "--")) {
      DIAL_LOG_FATAL << "Unexpected positional argument: " << arg << "\n"
                     << Usage(argv[0]);
    }
    arg = arg.substr(2);
    std::string value_text;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value_text = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    bool negated = false;
    if (!flags_.count(arg) && StartsWith(arg, "no-")) {
      negated = true;
      arg = arg.substr(3);
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      DIAL_LOG_FATAL << "Unknown flag --" << arg << "\n" << Usage(argv[0]);
    }
    Flag& flag = it->second;
    if (flag.kind == Kind::kBool && !has_value) {
      *flag.bool_value = !negated;
      continue;
    }
    DIAL_CHECK(!negated) << "--no- prefix is only valid for boolean flags";
    if (!has_value) {
      DIAL_CHECK_LT(i + 1, argc) << "Flag --" << arg << " expects a value";
      value_text = argv[++i];
    }
    SetFromText(arg, flag, value_text);
  }
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                     flag.default_text.c_str());
  }
  return out;
}

}  // namespace dial::util
