#ifndef DIAL_UTIL_FLAGS_H_
#define DIAL_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Tiny command-line flag parser for the bench harnesses and examples.
/// Supports `--name=value`, `--name value`, and boolean `--name` /
/// `--no-name`. Unknown flags, malformed values (`--workers=abc`,
/// `--workers=`), and missing values are hard errors so typos in sweep
/// scripts and serve launch lines are caught immediately.

namespace dial::util {

class FlagSet {
 public:
  /// Registers a flag with a default; returns a stable pointer to the value.
  int64_t* AddInt(const std::string& name, int64_t default_value,
                  const std::string& help);
  double* AddDouble(const std::string& name, double default_value,
                    const std::string& help);
  bool* AddBool(const std::string& name, bool default_value, const std::string& help);
  std::string* AddString(const std::string& name, const std::string& default_value,
                         const std::string& help);

  /// Parses argv (skipping argv[0]); aborts with usage text on errors or on
  /// `--help`.
  void Parse(int argc, char** argv);

  /// Status-returning variant of Parse for embedding and tests: returns
  /// InvalidArgument for unknown flags, positionals, malformed or missing
  /// values, and for `--help`. Flags parsed before the offending argument
  /// keep their new values; the rest are untouched.
  Status TryParse(int argc, char** argv);

  /// Usage text listing every registered flag.
  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    std::string default_text;
    int64_t* int_value = nullptr;
    double* double_value = nullptr;
    bool* bool_value = nullptr;
    std::string* string_value = nullptr;
  };

  Status SetFromText(const std::string& name, Flag& flag, const std::string& text);

  std::map<std::string, Flag> flags_;
  // Deques of stable storage for registered values.
  std::vector<std::unique_ptr<int64_t>> int_storage_;
  std::vector<std::unique_ptr<double>> double_storage_;
  std::vector<std::unique_ptr<bool>> bool_storage_;
  std::vector<std::unique_ptr<std::string>> string_storage_;
};

}  // namespace dial::util

#endif  // DIAL_UTIL_FLAGS_H_
