#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dial::util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
               msg.c_str());
  std::fflush(stderr);
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

LogMessageFatal::LogMessageFatal(const char* file, int line)
    : file_(file), line_(line) {}

LogMessageFatal::~LogMessageFatal() {
  Emit(LogLevel::kFatal, file_, line_, stream_.str());
  std::abort();
}

}  // namespace dial::util
