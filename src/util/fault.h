#ifndef DIAL_UTIL_FAULT_H_
#define DIAL_UTIL_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

/// \file
/// Deterministic fault injection for the robustness suites: a process-global
/// injector with named sites compiled into the I/O chokepoints (file
/// write/read in `util::BinaryWriter`/`BinaryReader`, socket send/recv in
/// the serve front end, scheduler submit). Disabled — the production state —
/// the per-site check is a single relaxed atomic load of `Armed()`, so the
/// hooks cost nothing measurable on the hot paths.
///
/// Faults are driven two ways:
///   - Programmatic (tests): `SetProbability(site, p)` for seeded random
///     failures, `FailNth(site, n)` for a deterministic one-shot on the n-th
///     call, `CrashNth(site, n)` for a hard `_exit` mid-operation (fork the
///     process first — the mid-write crash/reload tests do).
///   - Environment (CI fault matrix): `DIAL_FAULT_SEED=<u64>` seeds the RNG,
///     `DIAL_FAULT_SITES="file_write=0.01,socket_recv=0.5"` arms sites by
///     name at process start. Same spec also accepts `site=fail@N` /
///     `site=crash@N` one-shots.
///
/// Determinism: one seeded xorshift RNG per injector, mutated only under the
/// mutex, so a (seed, call-sequence) pair always injects the same faults.
/// A consecutive-injection cap (1000) keeps probability-1.0 configs from
/// livelocking retry loops — real EINTR storms end too.

namespace dial::util {

enum class FaultSite : int {
  kFileWrite = 0,
  kFileRead = 1,
  kSocketSend = 2,
  kSocketRecv = 3,
  kSchedulerSubmit = 4,
};

inline constexpr size_t kNumFaultSites = 5;

/// "file_write", "file_read", "socket_send", "socket_recv",
/// "scheduler_submit".
const char* FaultSiteName(FaultSite site);

/// Parses a site name; false (out untouched) for unknown names.
bool ParseFaultSite(const std::string& name, FaultSite* site);

class FaultInjector {
 public:
  /// The process-global injector. First access reads DIAL_FAULT_SEED /
  /// DIAL_FAULT_SITES (a malformed spec is logged and ignored — tests cover
  /// parsing via Configure directly).
  static FaultInjector& Global();

  /// True when any site is armed anywhere. Injection hooks gate on this
  /// before calling ShouldFail, keeping the disabled cost to one relaxed
  /// atomic load.
  static bool Armed();

  /// Reseeds and arms sites from a spec string:
  ///   "site=prob[,site=prob...]" with prob in [0,1], or "site=fail@N" /
  ///   "site=crash@N" for one-shots on the N-th call (1-based).
  /// Replaces the previous configuration entirely.
  Status Configure(uint64_t seed, const std::string& spec);

  void SetSeed(uint64_t seed);
  /// Random failure with probability `p` per call (0 disarms).
  void SetProbability(FaultSite site, double p);
  /// Deterministic one-shot failure on the n-th call from now (1-based).
  void FailNth(FaultSite site, uint64_t n);
  /// Hard `_exit(kCrashExitCode)` on the n-th call — simulates a crash in
  /// the middle of an operation. Only sane in a forked child.
  void CrashNth(FaultSite site, uint64_t n);
  /// Disarms every site and zeroes the counters (seed kept).
  void Reset();

  /// The per-call decision point: counts the call and reports whether the
  /// hook should fail it. May not return (CrashNth).
  bool ShouldFail(FaultSite site);

  /// Calls seen / faults injected at `site` since the last Reset.
  uint64_t calls(FaultSite site) const;
  uint64_t injected(FaultSite site) const;

  static constexpr int kCrashExitCode = 137;

 private:
  FaultInjector();

  struct SiteState {
    double probability = 0.0;
    uint64_t fail_at = 0;   // 0 = disarmed; counts down per call
    uint64_t crash_at = 0;  // 0 = disarmed
    uint64_t calls = 0;
    uint64_t injected = 0;
    uint64_t consecutive = 0;
  };

  void RecomputeArmedLocked();

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;
  uint64_t rng_state_ = 1;
  std::array<SiteState, kNumFaultSites> sites_;
};

}  // namespace dial::util

#endif  // DIAL_UTIL_FAULT_H_
