#ifndef DIAL_UTIL_STATUS_H_
#define DIAL_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/logging.h"

/// \file
/// `Status` / `StatusOr<T>` — exception-free recoverable error propagation,
/// used by I/O paths (serialization, model cache). Programmer errors use
/// DIAL_CHECK instead.

namespace dial::util {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruption = 4,
  kInternal = 5,
  /// Transient overload: the caller should back off and retry (the serve
  /// layer renders this as an "overload" response with a retry hint).
  kUnavailable = 6,
  /// The request's deadline expired before execution; retrying immediately
  /// is pointless under the same load.
  kDeadlineExceeded = 7,
};

/// Value-semantic error carrier. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or a non-OK Status. Accessing the value of a non-OK
/// StatusOr is a checked programmer error.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DIAL_CHECK(!status_.ok()) << "StatusOr constructed from OK status without value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DIAL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return value_;
  }
  T& value() & {
    DIAL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return value_;
  }
  T&& value() && {
    DIAL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace dial::util

/// Early-returns the status if it is not OK.
#define DIAL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::dial::util::Status _dial_status = (expr); \
    if (!_dial_status.ok()) return _dial_status; \
  } while (false)

#define DIAL_CHECK_OK(expr)                                         \
  do {                                                              \
    ::dial::util::Status _dial_status = (expr);                     \
    DIAL_CHECK(_dial_status.ok()) << _dial_status.ToString();       \
  } while (false)

#endif  // DIAL_UTIL_STATUS_H_
