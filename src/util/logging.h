#ifndef DIAL_UTIL_LOGGING_H_
#define DIAL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

/// \file
/// Minimal streaming logger plus DIAL_CHECK* invariant macros.
///
/// Library code never throws; violated invariants abort through
/// `LogMessageFatal` with a file:line message so death tests can assert on
/// them. Severity filtering is process-global (`SetMinLogLevel`).

namespace dial::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the process-wide minimum level actually emitted to stderr.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// One in-flight log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Fatal variant: always aborts in the destructor.
class LogMessageFatal {
 public:
  LogMessageFatal(const char* file, int line);
  [[noreturn]] ~LogMessageFatal();

  LogMessageFatal(const LogMessageFatal&) = delete;
  LogMessageFatal& operator=(const LogMessageFatal&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace dial::util

#define DIAL_LOG_DEBUG \
  ::dial::util::LogMessage(::dial::util::LogLevel::kDebug, __FILE__, __LINE__).stream()
#define DIAL_LOG_INFO \
  ::dial::util::LogMessage(::dial::util::LogLevel::kInfo, __FILE__, __LINE__).stream()
#define DIAL_LOG_WARNING \
  ::dial::util::LogMessage(::dial::util::LogLevel::kWarning, __FILE__, __LINE__).stream()
#define DIAL_LOG_ERROR \
  ::dial::util::LogMessage(::dial::util::LogLevel::kError, __FILE__, __LINE__).stream()
#define DIAL_LOG_FATAL \
  ::dial::util::LogMessageFatal(__FILE__, __LINE__).stream()

/// Aborts with a message when `condition` is false. Usable in any build mode;
/// these guard programmer errors, not user input.
#define DIAL_CHECK(condition)                                  \
  if (!(condition))                                            \
  ::dial::util::LogMessageFatal(__FILE__, __LINE__).stream()   \
      << "Check failed: " #condition " "

#define DIAL_CHECK_OP(op, a, b)                              \
  if (!((a)op(b)))                                           \
  ::dial::util::LogMessageFatal(__FILE__, __LINE__).stream() \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b) << ") "

#define DIAL_CHECK_EQ(a, b) DIAL_CHECK_OP(==, a, b)
#define DIAL_CHECK_NE(a, b) DIAL_CHECK_OP(!=, a, b)
#define DIAL_CHECK_LT(a, b) DIAL_CHECK_OP(<, a, b)
#define DIAL_CHECK_LE(a, b) DIAL_CHECK_OP(<=, a, b)
#define DIAL_CHECK_GT(a, b) DIAL_CHECK_OP(>, a, b)
#define DIAL_CHECK_GE(a, b) DIAL_CHECK_OP(>=, a, b)

#endif  // DIAL_UTIL_LOGGING_H_
