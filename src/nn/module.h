#ifndef DIAL_NN_MODULE_H_
#define DIAL_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/tape.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

/// \file
/// Base class for neural network modules: owns `autograd::Parameter`s,
/// composes children, and provides name-checked weight (de)serialization.

namespace dial::nn {

/// Per-forward call state threaded through all modules.
struct ForwardContext {
  autograd::Tape* tape;
  util::Rng* rng;       // used only by dropout
  bool training = false;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// All parameters of this module and its children, in registration order.
  std::vector<autograd::Parameter*> Parameters();

  /// Total number of scalar weights.
  size_t NumWeights();

  /// Writes every parameter (name, shape, data) in registration order.
  void Save(util::BinaryWriter& writer);

  /// Restores parameters; fails on name/shape mismatch or truncation.
  util::Status Load(util::BinaryReader& reader);

  /// Copies all parameter values from `other` (shapes must match; used to
  /// re-initialize the matcher from pretrained weights each AL round).
  void CopyWeightsFrom(Module& other);

 protected:
  /// Creates and owns a parameter. `name` is qualified with the module name.
  autograd::Parameter* AddParameter(const std::string& name, size_t rows, size_t cols);

  /// Registers a child whose parameters are reported after this module's own.
  void AddChild(Module* child);

 private:
  std::string name_;
  std::vector<std::unique_ptr<autograd::Parameter>> params_;
  std::vector<Module*> children_;
};

/// Xavier/Glorot uniform initialization.
void XavierInit(autograd::Parameter* p, util::Rng& rng);
/// Gaussian initialization with given stddev (BERT-style 0.02).
void NormalInit(autograd::Parameter* p, util::Rng& rng, float stddev = 0.02f);

}  // namespace dial::nn

#endif  // DIAL_NN_MODULE_H_
