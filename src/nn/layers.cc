#include "nn/layers.h"

namespace dial::nn {

using autograd::Var;

Linear::Linear(std::string name, size_t in, size_t out, util::Rng& rng)
    : Module(std::move(name)) {
  weight_ = AddParameter("weight", in, out);
  bias_ = AddParameter("bias", 1, out);
  XavierInit(weight_, rng);
}

Var Linear::Forward(ForwardContext& ctx, Var x) {
  Var w = ctx.tape->Leaf(weight_);
  Var b = ctx.tape->Leaf(bias_);
  return autograd::AddRowBroadcast(autograd::MatMul(x, w), b);
}

LayerNorm::LayerNorm(std::string name, size_t dim) : Module(std::move(name)) {
  gain_ = AddParameter("gain", 1, dim);
  bias_ = AddParameter("bias", 1, dim);
  gain_->value.Fill(1.0f);
}

Var LayerNorm::Forward(ForwardContext& ctx, Var x) {
  Var normalized = autograd::LayerNormRows(x);
  Var g = ctx.tape->Leaf(gain_);
  Var b = ctx.tape->Leaf(bias_);
  return autograd::AddRowBroadcast(autograd::MulRowBroadcast(normalized, g), b);
}

Embedding::Embedding(std::string name, size_t vocab, size_t dim, util::Rng& rng)
    : Module(std::move(name)) {
  table_ = AddParameter("table", vocab, dim);
  NormalInit(table_, rng);
}

Var Embedding::Forward(ForwardContext& ctx, const std::vector<int>& ids) {
  return autograd::EmbeddingGather(*ctx.tape, table_, ids);
}

PairClassifierHead::PairClassifierHead(std::string name, size_t dim, float dropout,
                                       util::Rng& rng)
    : Module(std::move(name)),
      dense_(this->name() + ".dense", dim, dim, rng),
      out_(this->name() + ".out", dim, 1, rng),
      dropout_(dropout) {
  AddChild(&dense_);
  AddChild(&out_);
}

Var PairClassifierHead::Forward(ForwardContext& ctx, Var x) {
  Var h = autograd::Dropout(x, dropout_, *ctx.rng, ctx.training);
  h = autograd::Tanh(dense_.Forward(ctx, h));
  h = autograd::Dropout(h, dropout_, *ctx.rng, ctx.training);
  return out_.Forward(ctx, h);
}

SentencePairHead::SentencePairHead(std::string name, size_t dim, util::Rng& rng)
    : Module(std::move(name)), out_(this->name() + ".out", 3 * dim, 1, rng) {
  AddChild(&out_);
}

Var SentencePairHead::Forward(ForwardContext& ctx, Var u, Var v) {
  Var diff = autograd::Abs(autograd::Sub(u, v));
  Var features = autograd::ConcatCols({u, v, diff});
  return out_.Forward(ctx, features);
}

}  // namespace dial::nn
