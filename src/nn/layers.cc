#include "nn/layers.h"

#include <algorithm>

#include "la/kernels.h"
#include "la/quant.h"

namespace dial::nn {

using autograd::Var;

Linear::Linear(std::string name, size_t in, size_t out, util::Rng& rng)
    : Module(std::move(name)) {
  weight_ = AddParameter("weight", in, out);
  bias_ = AddParameter("bias", 1, out);
  XavierInit(weight_, rng);
}

Var Linear::Forward(ForwardContext& ctx, Var x) {
  Var w = ctx.tape->Leaf(weight_);
  Var b = ctx.tape->Leaf(bias_);
  return autograd::AddRowBroadcast(autograd::MatMul(x, w), b);
}

autograd::Scratch Linear::InferForward(autograd::InferenceContext& ctx,
                                       const la::Matrix& x) const {
  autograd::Scratch out(ctx, x.rows(), out_features());
  if (ctx.precision() == autograd::Precision::kInt8) {
    // Quantized path: weights come from the context's epoch-validated cache
    // (transposed, per-output-feature scales); activations quantize per row
    // into thread-local scratch so pool workers never contend. The bias add
    // is folded into the kernel's dequantization.
    const auto qw = ctx.QuantizedTransposed(weight_->value);
    thread_local la::quant::QuantizedTensor qx;
    la::quant::QuantizeRows(x.data(), x.rows(), x.cols(), &qx);
    la::kernels::GemmInt8NT(x.rows(), out_features(), x.cols(),
                            qx.values.data(), qx.scales.data(),
                            qw->values.data(), qw->scales.data(),
                            bias_->value.row(0), out->data(), ctx.pool());
    return out;
  }
  autograd::infer::MatMul(x, weight_->value, *out, ctx.pool());
  la::AddRowBroadcast(*out, bias_->value);
  return out;
}

LayerNorm::LayerNorm(std::string name, size_t dim) : Module(std::move(name)) {
  gain_ = AddParameter("gain", 1, dim);
  bias_ = AddParameter("bias", 1, dim);
  gain_->value.Fill(1.0f);
}

Var LayerNorm::Forward(ForwardContext& ctx, Var x) {
  Var normalized = autograd::LayerNormRows(x);
  Var g = ctx.tape->Leaf(gain_);
  Var b = ctx.tape->Leaf(bias_);
  return autograd::AddRowBroadcast(autograd::MulRowBroadcast(normalized, g), b);
}

void LayerNorm::InferForward(const la::Matrix& x, la::Matrix& out) const {
  autograd::infer::LayerNormRows(x, out);
  const float* gain = gain_->value.row(0);
  const float* bias = bias_->value.row(0);
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (size_t c = 0; c < out.cols(); ++c) row[c] *= gain[c];
  }
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (size_t c = 0; c < out.cols(); ++c) row[c] += bias[c];
  }
}

Embedding::Embedding(std::string name, size_t vocab, size_t dim, util::Rng& rng)
    : Module(std::move(name)) {
  table_ = AddParameter("table", vocab, dim);
  NormalInit(table_, rng);
}

Var Embedding::Forward(ForwardContext& ctx, const std::vector<int>& ids) {
  return autograd::EmbeddingGather(*ctx.tape, table_, ids);
}

autograd::Scratch Embedding::InferGather(autograd::InferenceContext& ctx,
                                         const std::vector<int>& ids) const {
  const size_t d = table_->value.cols();
  autograd::Scratch out(ctx, ids.size(), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    DIAL_CHECK_GE(ids[i], 0);
    DIAL_CHECK_LT(static_cast<size_t>(ids[i]), table_->value.rows());
    const float* src = table_->value.row(ids[i]);
    std::copy(src, src + d, out->row(i));
  }
  return out;
}

PairClassifierHead::PairClassifierHead(std::string name, size_t dim, float dropout,
                                       util::Rng& rng)
    : Module(std::move(name)),
      dense_(this->name() + ".dense", dim, dim, rng),
      out_(this->name() + ".out", dim, 1, rng),
      dropout_(dropout) {
  AddChild(&dense_);
  AddChild(&out_);
}

Var PairClassifierHead::Forward(ForwardContext& ctx, Var x) {
  Var h = autograd::Dropout(x, dropout_, *ctx.rng, ctx.training);
  h = autograd::Tanh(dense_.Forward(ctx, h));
  h = autograd::Dropout(h, dropout_, *ctx.rng, ctx.training);
  return out_.Forward(ctx, h);
}

SentencePairHead::SentencePairHead(std::string name, size_t dim, util::Rng& rng)
    : Module(std::move(name)), out_(this->name() + ".out", 3 * dim, 1, rng) {
  AddChild(&out_);
}

Var SentencePairHead::Forward(ForwardContext& ctx, Var u, Var v) {
  Var diff = autograd::Abs(autograd::Sub(u, v));
  Var features = autograd::ConcatCols({u, v, diff});
  return out_.Forward(ctx, features);
}

}  // namespace dial::nn
