#ifndef DIAL_NN_TRANSFORMER_H_
#define DIAL_NN_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

/// \file
/// A BERT/RoBERTa-style transformer encoder (post-LN), sized for CPU-only
/// training. The Tape path processes one sequence per forward call; batching
/// is done by building several sequences on one tape and averaging their
/// losses, which avoids padding/masking logic entirely.
///
/// The inference engine adds a second, tape-free path (`InferForward`):
/// same-length sequences are packed into one (batch·len, dim) activation so
/// every linear layer runs as a single matrix-matrix GEMM, while attention
/// stays per sequence (fanned out over the context's pool). Outputs are
/// bit-identical to the per-sequence Tape forward with dropout off, and
/// bit-identical across thread counts — no padding or masking ever enters
/// the arithmetic.

namespace dial::nn {

struct TransformerConfig {
  size_t vocab_size = 2048;
  size_t max_positions = 64;
  size_t num_segments = 2;  // 0 = first record, 1 = second (paired mode)
  size_t dim = 32;
  size_t num_layers = 2;
  size_t num_heads = 2;
  size_t ffn_dim = 64;
  float dropout = 0.1f;
  /// Positional embeddings are initialized at this fraction of the token
  /// embedding scale so that content dominates mean-pooled representations
  /// (critical for single-mode blocking embeddings at small model sizes).
  float position_init_scale = 0.25f;

  /// Stable fingerprint used as a model-cache key component.
  uint64_t Fingerprint() const;
};

/// One self-attention block: MHA + residual + LN, FFN + residual + LN.
class TransformerLayer : public Module {
 public:
  TransformerLayer(std::string name, const TransformerConfig& config, util::Rng& rng);

  autograd::Var Forward(ForwardContext& ctx, autograd::Var x);

  /// Tape-free forward over `batch` packed same-length sequences: x is
  /// (batch*len, dim) and is updated in place. Linear sublayers run as one
  /// packed GEMM; attention runs per sequence over ctx's pool.
  void InferForward(autograd::InferenceContext& ctx, size_t batch, size_t len,
                    la::Matrix& x) const;

  /// Final-layer shortcut: computes ONLY each sequence's first row (the CLS
  /// state) of this layer's output into `cls` (batch, dim). Bit-identical to
  /// row b*len of InferForward — attention still attends over every token of
  /// `x`, but the query/FFN/LN work for the discarded rows is skipped. Valid
  /// only when no later layer consumes the other rows.
  void InferForwardCls(autograd::InferenceContext& ctx, size_t batch, size_t len,
                       const la::Matrix& x, la::Matrix& cls) const;

 private:
  autograd::Var SelfAttention(ForwardContext& ctx, autograd::Var x);

  const TransformerConfig& config_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  Linear ffn_in_;
  Linear ffn_out_;
  LayerNorm ln_attn_;
  LayerNorm ln_ffn_;
};

/// Full encoder: token + position + segment embeddings, N layers.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(std::string name, TransformerConfig config, util::Rng& rng);

  /// Contextual embeddings for one sequence. `ids` and `segments` must have
  /// equal length <= max_positions. Returns (len, dim). When `embed_out` is
  /// non-null it receives the embedding-layer output (before any attention
  /// block) — used by first+last-layer average pooling in single mode.
  autograd::Var Forward(ForwardContext& ctx, const std::vector<int>& ids,
                        const std::vector<int>& segments,
                        autograd::Var* embed_out = nullptr);

  /// Output-pruning knobs for the batched inference forward. The engine may
  /// skip work whose results the caller never reads; every value it does
  /// produce stays bit-identical to the full Tape forward.
  struct InferOptions {
    /// Stop after the embedding layer: `hidden` receives the embedding-layer
    /// output (== `embed_out`) and no attention layer runs. What single-mode
    /// pooling consumes when `single_mode_last_weight <= 0`.
    bool embed_only = false;
    /// In the final layer, compute only each sequence's CLS row: row b*len
    /// of `hidden` is exact, every other row is unspecified. What paired-
    /// mode feature extraction consumes.
    bool cls_only_last = false;
  };

  /// Tape-free batched forward: `ids`/`segments` hold `batch` sequences of
  /// equal length `len` packed back to back (size batch*len). Fills `hidden`
  /// (batch*len, dim); `embed_out` (optional, same shape) receives the
  /// embedding-layer output. Bit-identical to Forward per sequence with
  /// dropout off (modulo rows `options` declares unread).
  void InferForward(autograd::InferenceContext& ctx, const std::vector<int>& ids,
                    const std::vector<int>& segments, size_t batch, size_t len,
                    la::Matrix& hidden, la::Matrix* embed_out,
                    const InferOptions& options) const;
  void InferForward(autograd::InferenceContext& ctx, const std::vector<int>& ids,
                    const std::vector<int>& segments, size_t batch, size_t len,
                    la::Matrix& hidden, la::Matrix* embed_out = nullptr) const {
    InferForward(ctx, ids, segments, batch, len, hidden, embed_out,
                 InferOptions());
  }

  const TransformerConfig& config() const { return config_; }
  Embedding& token_embedding() { return tokens_; }
  const Embedding& token_embedding() const { return tokens_; }

 private:
  TransformerConfig config_;
  Embedding tokens_;
  Embedding positions_;
  Embedding segments_;
  LayerNorm ln_embed_;
  std::vector<std::unique_ptr<TransformerLayer>> layers_;
};

}  // namespace dial::nn

#endif  // DIAL_NN_TRANSFORMER_H_
