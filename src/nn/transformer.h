#ifndef DIAL_NN_TRANSFORMER_H_
#define DIAL_NN_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

/// \file
/// A BERT/RoBERTa-style transformer encoder (post-LN), sized for CPU-only
/// training. Processes one sequence per forward call; batching is done by
/// building several sequences on one tape and averaging their losses, which
/// avoids padding/masking logic entirely.

namespace dial::nn {

struct TransformerConfig {
  size_t vocab_size = 2048;
  size_t max_positions = 64;
  size_t num_segments = 2;  // 0 = first record, 1 = second (paired mode)
  size_t dim = 32;
  size_t num_layers = 2;
  size_t num_heads = 2;
  size_t ffn_dim = 64;
  float dropout = 0.1f;
  /// Positional embeddings are initialized at this fraction of the token
  /// embedding scale so that content dominates mean-pooled representations
  /// (critical for single-mode blocking embeddings at small model sizes).
  float position_init_scale = 0.25f;

  /// Stable fingerprint used as a model-cache key component.
  uint64_t Fingerprint() const;
};

/// One self-attention block: MHA + residual + LN, FFN + residual + LN.
class TransformerLayer : public Module {
 public:
  TransformerLayer(std::string name, const TransformerConfig& config, util::Rng& rng);

  autograd::Var Forward(ForwardContext& ctx, autograd::Var x);

 private:
  autograd::Var SelfAttention(ForwardContext& ctx, autograd::Var x);

  const TransformerConfig& config_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  Linear ffn_in_;
  Linear ffn_out_;
  LayerNorm ln_attn_;
  LayerNorm ln_ffn_;
};

/// Full encoder: token + position + segment embeddings, N layers.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(std::string name, TransformerConfig config, util::Rng& rng);

  /// Contextual embeddings for one sequence. `ids` and `segments` must have
  /// equal length <= max_positions. Returns (len, dim). When `embed_out` is
  /// non-null it receives the embedding-layer output (before any attention
  /// block) — used by first+last-layer average pooling in single mode.
  autograd::Var Forward(ForwardContext& ctx, const std::vector<int>& ids,
                        const std::vector<int>& segments,
                        autograd::Var* embed_out = nullptr);

  const TransformerConfig& config() const { return config_; }
  Embedding& token_embedding() { return tokens_; }

 private:
  TransformerConfig config_;
  Embedding tokens_;
  Embedding positions_;
  Embedding segments_;
  LayerNorm ln_embed_;
  std::vector<std::unique_ptr<TransformerLayer>> layers_;
};

}  // namespace dial::nn

#endif  // DIAL_NN_TRANSFORMER_H_
