#ifndef DIAL_NN_LAYERS_H_
#define DIAL_NN_LAYERS_H_

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"

/// \file
/// Basic trainable layers: Linear, LayerNorm (affine), Embedding, and the
/// two task heads used by DIAL (the matcher's pair classifier and the
/// SentenceBERT-style single-mode classifier).

namespace dial::nn {

/// y = x W + b, W: (in, out), b: (1, out).
class Linear : public Module {
 public:
  Linear(std::string name, size_t in, size_t out, util::Rng& rng);

  autograd::Var Forward(ForwardContext& ctx, autograd::Var x);

  size_t in_features() const { return weight_->value.rows(); }
  size_t out_features() const { return weight_->value.cols(); }

 private:
  autograd::Parameter* weight_;
  autograd::Parameter* bias_;
};

/// Per-row layer normalization with learned gain/bias.
class LayerNorm : public Module {
 public:
  LayerNorm(std::string name, size_t dim);

  autograd::Var Forward(ForwardContext& ctx, autograd::Var x);

 private:
  autograd::Parameter* gain_;
  autograd::Parameter* bias_;
};

/// Token (or positional / segment) embedding table.
class Embedding : public Module {
 public:
  Embedding(std::string name, size_t vocab, size_t dim, util::Rng& rng);

  autograd::Var Forward(ForwardContext& ctx, const std::vector<int>& ids);

  size_t vocab_size() const { return table_->value.rows(); }
  size_t dim() const { return table_->value.cols(); }
  autograd::Parameter* table() { return table_; }

 private:
  autograd::Parameter* table_;
};

/// The matcher head of Eq. 5: dropout → linear(d→d) → tanh → dropout →
/// linear(d→1); the logit feeds a sigmoid / BCE loss.
class PairClassifierHead : public Module {
 public:
  PairClassifierHead(std::string name, size_t dim, float dropout, util::Rng& rng);

  /// x: (m, d) CLS embeddings → (m, 1) logits.
  autograd::Var Forward(ForwardContext& ctx, autograd::Var x);

 private:
  Linear dense_;
  Linear out_;
  float dropout_;
};

/// SentenceBERT-style pair classifier over single-mode embeddings:
/// logits = Linear([u ; v ; |u - v|]).
class SentencePairHead : public Module {
 public:
  SentencePairHead(std::string name, size_t dim, util::Rng& rng);

  /// u, v: (m, d) record embeddings → (m, 1) logits.
  autograd::Var Forward(ForwardContext& ctx, autograd::Var u, autograd::Var v);

 private:
  Linear out_;
};

}  // namespace dial::nn

#endif  // DIAL_NN_LAYERS_H_
