#ifndef DIAL_NN_LAYERS_H_
#define DIAL_NN_LAYERS_H_

#include <string>
#include <vector>

#include "autograd/inference.h"
#include "autograd/ops.h"
#include "nn/module.h"

/// \file
/// Basic trainable layers: Linear, LayerNorm (affine), Embedding, and the
/// two task heads used by DIAL (the matcher's pair classifier and the
/// SentenceBERT-style single-mode classifier).
///
/// Each layer exposes two forwards: `Forward` records autograd nodes on the
/// context's Tape (training), and `InferForward` runs tape-free through an
/// `autograd::InferenceContext` arena (inference) — same arithmetic, zero
/// graph bookkeeping, bit-identical outputs with dropout off.

namespace dial::nn {

/// y = x W + b, W: (in, out), b: (1, out).
class Linear : public Module {
 public:
  Linear(std::string name, size_t in, size_t out, util::Rng& rng);

  autograd::Var Forward(ForwardContext& ctx, autograd::Var x);

  /// Tape-free y = x W + b into a borrowed arena matrix (x: (m, in)).
  autograd::Scratch InferForward(autograd::InferenceContext& ctx,
                                 const la::Matrix& x) const;

  size_t in_features() const { return weight_->value.rows(); }
  size_t out_features() const { return weight_->value.cols(); }

  /// Raw parameter access for inference paths that run sliced/fused GEMMs
  /// over the weights directly (per-head attention projections).
  const la::Matrix& weight_values() const { return weight_->value; }
  const la::Matrix& bias_values() const { return bias_->value; }

 private:
  autograd::Parameter* weight_;
  autograd::Parameter* bias_;
};

/// Per-row layer normalization with learned gain/bias.
class LayerNorm : public Module {
 public:
  LayerNorm(std::string name, size_t dim);

  autograd::Var Forward(ForwardContext& ctx, autograd::Var x);

  /// Tape-free per-row layer norm + affine, written into `out` (pre-shaped
  /// like x; may alias x).
  void InferForward(const la::Matrix& x, la::Matrix& out) const;

 private:
  autograd::Parameter* gain_;
  autograd::Parameter* bias_;
};

/// Token (or positional / segment) embedding table.
class Embedding : public Module {
 public:
  Embedding(std::string name, size_t vocab, size_t dim, util::Rng& rng);

  autograd::Var Forward(ForwardContext& ctx, const std::vector<int>& ids);

  /// Tape-free gather of rows `ids` into a borrowed (ids.size(), dim) matrix.
  autograd::Scratch InferGather(autograd::InferenceContext& ctx,
                                const std::vector<int>& ids) const;

  size_t vocab_size() const { return table_->value.rows(); }
  size_t dim() const { return table_->value.cols(); }
  autograd::Parameter* table() { return table_; }
  const autograd::Parameter* table() const { return table_; }

 private:
  autograd::Parameter* table_;
};

/// The matcher head of Eq. 5: dropout → linear(d→d) → tanh → dropout →
/// linear(d→1); the logit feeds a sigmoid / BCE loss.
class PairClassifierHead : public Module {
 public:
  PairClassifierHead(std::string name, size_t dim, float dropout, util::Rng& rng);

  /// x: (m, d) CLS embeddings → (m, 1) logits.
  autograd::Var Forward(ForwardContext& ctx, autograd::Var x);

 private:
  Linear dense_;
  Linear out_;
  float dropout_;
};

/// SentenceBERT-style pair classifier over single-mode embeddings:
/// logits = Linear([u ; v ; |u - v|]).
class SentencePairHead : public Module {
 public:
  SentencePairHead(std::string name, size_t dim, util::Rng& rng);

  /// u, v: (m, d) record embeddings → (m, 1) logits.
  autograd::Var Forward(ForwardContext& ctx, autograd::Var u, autograd::Var v);

 private:
  Linear out_;
};

}  // namespace dial::nn

#endif  // DIAL_NN_LAYERS_H_
