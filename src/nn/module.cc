#include "nn/module.h"

#include <algorithm>
#include <cmath>

#include "la/quant.h"

namespace dial::nn {

std::vector<autograd::Parameter*> Module::Parameters() {
  std::vector<autograd::Parameter*> out;
  for (auto& p : params_) out.push_back(p.get());
  for (Module* child : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

size_t Module::NumWeights() {
  size_t total = 0;
  for (autograd::Parameter* p : Parameters()) total += p->value.size();
  return total;
}

void Module::Save(util::BinaryWriter& writer) {
  auto params = Parameters();
  writer.WriteU64(params.size());
  for (autograd::Parameter* p : params) {
    writer.WriteString(p->name);
    writer.WriteU64(p->value.rows());
    writer.WriteU64(p->value.cols());
    writer.WriteFloats(p->value.data(), p->value.size());
  }
}

util::Status Module::Load(util::BinaryReader& reader) {
  DIAL_RETURN_IF_ERROR(reader.status());
  auto params = Parameters();
  const uint64_t count = reader.ReadU64();
  DIAL_RETURN_IF_ERROR(reader.status());
  if (count != params.size()) {
    return util::Status::Corruption("parameter count mismatch for module " + name_);
  }
  for (autograd::Parameter* p : params) {
    const std::string name = reader.ReadString();
    const uint64_t rows = reader.ReadU64();
    const uint64_t cols = reader.ReadU64();
    std::vector<float> data = reader.ReadFloatVector();
    DIAL_RETURN_IF_ERROR(reader.status());
    if (name != p->name) {
      return util::Status::Corruption("parameter name mismatch: expected " + p->name +
                                      " got " + name);
    }
    if (rows != p->value.rows() || cols != p->value.cols() ||
        data.size() != p->value.size()) {
      return util::Status::Corruption("parameter shape mismatch for " + name);
    }
    std::copy(data.begin(), data.end(), p->value.data());
  }
  la::quant::BumpWeightEpoch();  // invalidates cached int8 weights
  return util::Status::OK();
}

void Module::CopyWeightsFrom(Module& other) {
  auto mine = Parameters();
  auto theirs = other.Parameters();
  DIAL_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    DIAL_CHECK_EQ(mine[i]->value.rows(), theirs[i]->value.rows());
    DIAL_CHECK_EQ(mine[i]->value.cols(), theirs[i]->value.cols());
    mine[i]->value = theirs[i]->value;
  }
  la::quant::BumpWeightEpoch();  // invalidates cached int8 weights
}

autograd::Parameter* Module::AddParameter(const std::string& name, size_t rows,
                                          size_t cols) {
  // A fresh parameter can land at a freed matrix's address; bumping here
  // keeps address-keyed quantized-weight caches from resurrecting stale
  // entries across module rebuilds.
  la::quant::BumpWeightEpoch();
  params_.push_back(
      std::make_unique<autograd::Parameter>(name_ + "." + name, rows, cols));
  return params_.back().get();
}

void Module::AddChild(Module* child) {
  DIAL_CHECK(child != nullptr);
  children_.push_back(child);
}

void XavierInit(autograd::Parameter* p, util::Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(p->value.rows() + p->value.cols()));
  p->value.RandUniform(rng, limit);
}

void NormalInit(autograd::Parameter* p, util::Rng& rng, float stddev) {
  p->value.RandNormal(rng, stddev);
}

}  // namespace dial::nn
