#include "nn/transformer.h"

#include <algorithm>
#include <cmath>

#include "la/kernels.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dial::nn {

using autograd::Var;

uint64_t TransformerConfig::Fingerprint() const {
  const std::string text = util::StrFormat(
      "v=%zu,p=%zu,s=%zu,d=%zu,l=%zu,h=%zu,f=%zu,do=%.4f,pi=%.3f,pool=fl", vocab_size,
      max_positions, num_segments, dim, num_layers, num_heads, ffn_dim, dropout,
      position_init_scale);
  return util::Fnv1a(text);
}

TransformerLayer::TransformerLayer(std::string name, const TransformerConfig& config,
                                   util::Rng& rng)
    : Module(name),
      config_(config),
      wq_(name + ".wq", config.dim, config.dim, rng),
      wk_(name + ".wk", config.dim, config.dim, rng),
      wv_(name + ".wv", config.dim, config.dim, rng),
      wo_(name + ".wo", config.dim, config.dim, rng),
      ffn_in_(name + ".ffn_in", config.dim, config.ffn_dim, rng),
      ffn_out_(name + ".ffn_out", config.ffn_dim, config.dim, rng),
      ln_attn_(name + ".ln_attn", config.dim),
      ln_ffn_(name + ".ln_ffn", config.dim) {
  DIAL_CHECK_EQ(config.dim % config.num_heads, 0u);
  AddChild(&wq_);
  AddChild(&wk_);
  AddChild(&wv_);
  AddChild(&wo_);
  AddChild(&ffn_in_);
  AddChild(&ffn_out_);
  AddChild(&ln_attn_);
  AddChild(&ln_ffn_);
}

Var TransformerLayer::SelfAttention(ForwardContext& ctx, Var x) {
  const size_t head_dim = config_.dim / config_.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  Var q = wq_.Forward(ctx, x);
  Var k = wk_.Forward(ctx, x);
  Var v = wv_.Forward(ctx, x);
  std::vector<Var> head_outputs;
  head_outputs.reserve(config_.num_heads);
  for (size_t h = 0; h < config_.num_heads; ++h) {
    const size_t begin = h * head_dim;
    const size_t end = begin + head_dim;
    Var qh = autograd::SliceCols(q, begin, end);
    Var kh = autograd::SliceCols(k, begin, end);
    Var vh = autograd::SliceCols(v, begin, end);
    Var scores = autograd::ScalarMul(autograd::MatMulTransposeB(qh, kh), scale);
    Var attn = autograd::SoftmaxRows(scores);
    attn = autograd::Dropout(attn, config_.dropout, *ctx.rng, ctx.training);
    head_outputs.push_back(autograd::MatMul(attn, vh));
  }
  Var merged = autograd::ConcatCols(head_outputs);
  return wo_.Forward(ctx, merged);
}

namespace {

/// Copies columns [c0, c0 + cols) of `src` into the dense (rows, cols) `dst`.
void SliceColsInto(const la::Matrix& src, size_t c0, size_t cols,
                   la::Matrix& dst) {
  for (size_t r = 0; r < src.rows(); ++r) {
    const float* s = src.row(r) + c0;
    std::copy(s, s + cols, dst.row(r));
  }
}

}  // namespace

void TransformerLayer::InferForward(autograd::InferenceContext& ctx, size_t batch,
                                    size_t len, la::Matrix& x) const {
  namespace infer = autograd::infer;
  using autograd::Scratch;
  const size_t d = config_.dim;
  DIAL_CHECK_EQ(x.rows(), batch * len);
  DIAL_CHECK_EQ(x.cols(), d);
  const size_t rows = batch * len;
  const size_t heads = config_.num_heads;
  const size_t head_dim = d / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  // Head-split packed projections: one (rows, d) x (d, head_dim) GEMM per
  // head per projection, writing per-head contiguous activations so the
  // attention GEMMs below read them in place (no per-sequence slice copies).
  // Column-sliced GEMMs accumulate exactly like the full-width GEMM (the k
  // reduction never depends on which output columns are computed), so this
  // stays bit-identical to the Tape path's full q/k/v projections.
  std::vector<Scratch> qh, kh, vh, head_out;
  {
    Scratch wslice(ctx, d, head_dim);
    Scratch bslice(ctx, 1, head_dim);
    const Linear* projections[3] = {&wq_, &wk_, &wv_};
    std::vector<Scratch>* outputs[3] = {&qh, &kh, &vh};
    for (int p = 0; p < 3; ++p) {
      for (size_t h = 0; h < heads; ++h) {
        const size_t c0 = h * head_dim;
        SliceColsInto(projections[p]->weight_values(), c0, head_dim, *wslice);
        std::copy(projections[p]->bias_values().row(0) + c0,
                  projections[p]->bias_values().row(0) + c0 + head_dim,
                  bslice->row(0));
        outputs[p]->emplace_back(ctx, rows, head_dim);
        la::Matrix& out = *outputs[p]->back();
        out.Zero();
        la::kernels::GemmNN(rows, head_dim, d, x.data(), wslice->data(),
                            out.data(), ctx.pool());
        la::AddRowBroadcast(out, *bslice);
      }
    }
    for (size_t h = 0; h < heads; ++h) head_out.emplace_back(ctx, rows, head_dim);
  }

  // Attention mixes tokens within one sequence only, so sequences fan out
  // over the pool; each worker borrows its own scratch from the arena.
  util::ParallelFor(ctx.pool(), batch, [&](size_t begin, size_t end) {
    Scratch scores(ctx, len, len);
    for (size_t b = begin; b < end; ++b) {
      const size_t r0 = b * len;
      for (size_t h = 0; h < heads; ++h) {
        scores->Zero();
        la::kernels::GemmNT(len, len, head_dim, qh[h]->row(r0), kh[h]->row(r0),
                            scores->data());
        la::Scale(*scores, scale);
        infer::SoftmaxRowsInPlace(*scores);
        float* out = head_out[h]->row(r0);
        std::fill(out, out + len * head_dim, 0.0f);
        la::kernels::GemmNN(len, head_dim, len, scores->data(), vh[h]->row(r0),
                            out);
      }
    }
  });

  // Output projection, head-split: wo(merged) == sum over heads of
  // head_out_h x Wo[rows c0..c0+head_dim) — and because head_dim is a
  // multiple of the GEMM kernel's 4-step k-grouping, accumulating the heads
  // in ascending order reproduces the full GEMM's per-element float-add
  // sequence exactly. Falls back to materializing `merged` otherwise.
  Scratch attn(ctx, rows, d);
  if (head_dim % 4 == 0) {
    attn->Zero();
    for (size_t h = 0; h < heads; ++h) {
      la::kernels::GemmNN(rows, d, head_dim, head_out[h]->data(),
                          wo_.weight_values().row(h * head_dim), attn->data(),
                          ctx.pool());
    }
    la::AddRowBroadcast(*attn, wo_.bias_values());
  } else {
    Scratch merged(ctx, rows, d);
    for (size_t h = 0; h < heads; ++h) {
      const size_t c0 = h * head_dim;
      for (size_t r = 0; r < rows; ++r) {
        const float* src = head_out[h]->row(r);
        std::copy(src, src + head_dim, merged->row(r) + c0);
      }
    }
    attn = wo_.InferForward(ctx, *merged);
  }

  // Residual + post-LN; dropout is a no-op at inference.
  Scratch sum(ctx, rows, d);
  infer::AddInto(x, *attn, *sum);
  ln_attn_.InferForward(*sum, x);

  Scratch ffn_hidden = ffn_in_.InferForward(ctx, x);
  infer::GeluInPlace(*ffn_hidden);
  Scratch ffn = ffn_out_.InferForward(ctx, *ffn_hidden);
  infer::AddInto(x, *ffn, *sum);
  ln_ffn_.InferForward(*sum, x);
}

void TransformerLayer::InferForwardCls(autograd::InferenceContext& ctx,
                                       size_t batch, size_t len,
                                       const la::Matrix& x,
                                       la::Matrix& cls) const {
  namespace infer = autograd::infer;
  using autograd::Scratch;
  const size_t d = config_.dim;
  DIAL_CHECK_EQ(x.rows(), batch * len);
  DIAL_CHECK_EQ(x.cols(), d);
  DIAL_CHECK_EQ(cls.rows(), batch);
  DIAL_CHECK_EQ(cls.cols(), d);
  const size_t head_dim = d / config_.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  // CLS input rows, packed (batch, d): only these rows need q / FFN / LN.
  Scratch x0(ctx, batch, d);
  for (size_t b = 0; b < batch; ++b) {
    std::copy(x.row(b * len), x.row(b * len) + d, x0->row(b));
  }
  Scratch q = wq_.InferForward(ctx, *x0);  // (batch, d)
  Scratch k = wk_.InferForward(ctx, x);    // keys/values still span all tokens
  Scratch v = wv_.InferForward(ctx, x);
  Scratch merged(ctx, batch, d);

  util::ParallelFor(ctx.pool(), batch, [&](size_t begin, size_t end) {
    Scratch kh(ctx, len, head_dim);
    Scratch vh(ctx, len, head_dim);
    Scratch scores(ctx, 1, len);
    Scratch head_out(ctx, 1, head_dim);
    for (size_t b = begin; b < end; ++b) {
      const size_t r0 = b * len;
      for (size_t h = 0; h < config_.num_heads; ++h) {
        const size_t c0 = h * head_dim;
        for (size_t t = 0; t < len; ++t) {
          const float* kr = k->row(r0 + t) + c0;
          const float* vr = v->row(r0 + t) + c0;
          std::copy(kr, kr + head_dim, kh->row(t));
          std::copy(vr, vr + head_dim, vh->row(t));
        }
        // One query row: the same GemmNT/GemmNN accumulation as the full
        // (len, len) score matrix restricted to row 0.
        scores->Zero();
        la::kernels::GemmNT(1, len, head_dim, q->row(b) + c0, kh->data(),
                            scores->data());
        la::Scale(*scores, scale);
        infer::SoftmaxRowsInPlace(*scores);
        head_out->Zero();
        la::kernels::GemmNN(1, head_dim, len, scores->data(), vh->data(),
                            head_out->data());
        std::copy(head_out->row(0), head_out->row(0) + head_dim,
                  merged->row(b) + c0);
      }
    }
  });

  Scratch attn = wo_.InferForward(ctx, *merged);
  Scratch sum(ctx, batch, d);
  infer::AddInto(*x0, *attn, *sum);
  ln_attn_.InferForward(*sum, cls);

  Scratch ffn_hidden = ffn_in_.InferForward(ctx, cls);
  infer::GeluInPlace(*ffn_hidden);
  Scratch ffn = ffn_out_.InferForward(ctx, *ffn_hidden);
  infer::AddInto(cls, *ffn, *sum);
  ln_ffn_.InferForward(*sum, cls);
}

Var TransformerLayer::Forward(ForwardContext& ctx, Var x) {
  Var attn = SelfAttention(ctx, x);
  attn = autograd::Dropout(attn, config_.dropout, *ctx.rng, ctx.training);
  x = ln_attn_.Forward(ctx, autograd::Add(x, attn));
  Var ffn = ffn_out_.Forward(ctx, autograd::Gelu(ffn_in_.Forward(ctx, x)));
  ffn = autograd::Dropout(ffn, config_.dropout, *ctx.rng, ctx.training);
  return ln_ffn_.Forward(ctx, autograd::Add(x, ffn));
}

TransformerEncoder::TransformerEncoder(std::string name, TransformerConfig config,
                                       util::Rng& rng)
    : Module(name),
      config_(config),
      tokens_(name + ".tokens", config.vocab_size, config.dim, rng),
      positions_(name + ".positions", config.max_positions, config.dim, rng),
      segments_(name + ".segments", config.num_segments, config.dim, rng),
      ln_embed_(name + ".ln_embed", config.dim) {
  AddChild(&tokens_);
  AddChild(&positions_);
  AddChild(&segments_);
  AddChild(&ln_embed_);
  // Keep positional signal subordinate to lexical content (see config).
  la::Scale(positions_.table()->value, config.position_init_scale);
  for (size_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerLayer>(
        name + util::StrFormat(".layer%zu", i), config_, rng));
    AddChild(layers_.back().get());
  }
}

Var TransformerEncoder::Forward(ForwardContext& ctx, const std::vector<int>& ids,
                                const std::vector<int>& segment_ids,
                                Var* embed_out) {
  DIAL_CHECK_EQ(ids.size(), segment_ids.size());
  DIAL_CHECK_GT(ids.size(), 0u);
  DIAL_CHECK_LE(ids.size(), config_.max_positions);
  std::vector<int> pos_ids(ids.size());
  for (size_t i = 0; i < pos_ids.size(); ++i) pos_ids[i] = static_cast<int>(i);
  Var x = autograd::Add(
      autograd::Add(tokens_.Forward(ctx, ids), positions_.Forward(ctx, pos_ids)),
      segments_.Forward(ctx, segment_ids));
  x = ln_embed_.Forward(ctx, x);
  if (embed_out != nullptr) *embed_out = x;
  x = autograd::Dropout(x, config_.dropout, *ctx.rng, ctx.training);
  for (auto& layer : layers_) x = layer->Forward(ctx, x);
  return x;
}

void TransformerEncoder::InferForward(autograd::InferenceContext& ctx,
                                      const std::vector<int>& ids,
                                      const std::vector<int>& segment_ids,
                                      size_t batch, size_t len, la::Matrix& hidden,
                                      la::Matrix* embed_out,
                                      const InferOptions& options) const {
  namespace infer = autograd::infer;
  DIAL_CHECK_GT(batch, 0u);
  DIAL_CHECK_GT(len, 0u);
  DIAL_CHECK_LE(len, config_.max_positions);
  DIAL_CHECK_EQ(ids.size(), batch * len);
  DIAL_CHECK_EQ(segment_ids.size(), ids.size());
  const size_t d = config_.dim;
  DIAL_CHECK_EQ(hidden.rows(), batch * len);
  DIAL_CHECK_EQ(hidden.cols(), d);

  // Fused token + position + segment gather-add ((tok + pos) + seg, matching
  // the Tape path's Add(Add(...), ...) association), then the embedding LN.
  const la::Matrix& tok = tokens_.table()->value;
  const la::Matrix& pos = positions_.table()->value;
  const la::Matrix& seg = segments_.table()->value;
  autograd::Scratch sum(ctx, batch * len, d);
  for (size_t i = 0; i < batch * len; ++i) {
    DIAL_CHECK_GE(ids[i], 0);
    DIAL_CHECK_LT(static_cast<size_t>(ids[i]), tok.rows());
    DIAL_CHECK_GE(segment_ids[i], 0);
    DIAL_CHECK_LT(static_cast<size_t>(segment_ids[i]), seg.rows());
    const float* tr = tok.row(ids[i]);
    const float* pr = pos.row(i % len);
    const float* sr = seg.row(segment_ids[i]);
    float* out = sum->row(i);
    for (size_t c = 0; c < d; ++c) out[c] = (tr[c] + pr[c]) + sr[c];
  }
  ln_embed_.InferForward(*sum, hidden);
  if (embed_out != nullptr) {
    DIAL_CHECK_EQ(embed_out->rows(), batch * len);
    DIAL_CHECK_EQ(embed_out->cols(), d);
    std::copy(hidden.data(), hidden.data() + hidden.size(), embed_out->data());
  }
  if (options.embed_only || layers_.empty()) return;
  // Dropout is identity at inference; the layers update `hidden` in place.
  const size_t full_layers =
      options.cls_only_last ? layers_.size() - 1 : layers_.size();
  for (size_t i = 0; i < full_layers; ++i) {
    layers_[i]->InferForward(ctx, batch, len, hidden);
  }
  if (options.cls_only_last) {
    // Final layer: only each sequence's CLS row is ever read downstream.
    autograd::Scratch cls(ctx, batch, d);
    layers_.back()->InferForwardCls(ctx, batch, len, hidden, *cls);
    for (size_t b = 0; b < batch; ++b) {
      std::copy(cls->row(b), cls->row(b) + d, hidden.row(b * len));
    }
  }
}

}  // namespace dial::nn
