#include "nn/transformer.h"

#include <cmath>

#include "util/hash.h"
#include "util/string_util.h"

namespace dial::nn {

using autograd::Var;

uint64_t TransformerConfig::Fingerprint() const {
  const std::string text = util::StrFormat(
      "v=%zu,p=%zu,s=%zu,d=%zu,l=%zu,h=%zu,f=%zu,do=%.4f,pi=%.3f,pool=fl", vocab_size,
      max_positions, num_segments, dim, num_layers, num_heads, ffn_dim, dropout,
      position_init_scale);
  return util::Fnv1a(text);
}

TransformerLayer::TransformerLayer(std::string name, const TransformerConfig& config,
                                   util::Rng& rng)
    : Module(name),
      config_(config),
      wq_(name + ".wq", config.dim, config.dim, rng),
      wk_(name + ".wk", config.dim, config.dim, rng),
      wv_(name + ".wv", config.dim, config.dim, rng),
      wo_(name + ".wo", config.dim, config.dim, rng),
      ffn_in_(name + ".ffn_in", config.dim, config.ffn_dim, rng),
      ffn_out_(name + ".ffn_out", config.ffn_dim, config.dim, rng),
      ln_attn_(name + ".ln_attn", config.dim),
      ln_ffn_(name + ".ln_ffn", config.dim) {
  DIAL_CHECK_EQ(config.dim % config.num_heads, 0u);
  AddChild(&wq_);
  AddChild(&wk_);
  AddChild(&wv_);
  AddChild(&wo_);
  AddChild(&ffn_in_);
  AddChild(&ffn_out_);
  AddChild(&ln_attn_);
  AddChild(&ln_ffn_);
}

Var TransformerLayer::SelfAttention(ForwardContext& ctx, Var x) {
  const size_t head_dim = config_.dim / config_.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  Var q = wq_.Forward(ctx, x);
  Var k = wk_.Forward(ctx, x);
  Var v = wv_.Forward(ctx, x);
  std::vector<Var> head_outputs;
  head_outputs.reserve(config_.num_heads);
  for (size_t h = 0; h < config_.num_heads; ++h) {
    const size_t begin = h * head_dim;
    const size_t end = begin + head_dim;
    Var qh = autograd::SliceCols(q, begin, end);
    Var kh = autograd::SliceCols(k, begin, end);
    Var vh = autograd::SliceCols(v, begin, end);
    Var scores = autograd::ScalarMul(autograd::MatMulTransposeB(qh, kh), scale);
    Var attn = autograd::SoftmaxRows(scores);
    attn = autograd::Dropout(attn, config_.dropout, *ctx.rng, ctx.training);
    head_outputs.push_back(autograd::MatMul(attn, vh));
  }
  Var merged = autograd::ConcatCols(head_outputs);
  return wo_.Forward(ctx, merged);
}

Var TransformerLayer::Forward(ForwardContext& ctx, Var x) {
  Var attn = SelfAttention(ctx, x);
  attn = autograd::Dropout(attn, config_.dropout, *ctx.rng, ctx.training);
  x = ln_attn_.Forward(ctx, autograd::Add(x, attn));
  Var ffn = ffn_out_.Forward(ctx, autograd::Gelu(ffn_in_.Forward(ctx, x)));
  ffn = autograd::Dropout(ffn, config_.dropout, *ctx.rng, ctx.training);
  return ln_ffn_.Forward(ctx, autograd::Add(x, ffn));
}

TransformerEncoder::TransformerEncoder(std::string name, TransformerConfig config,
                                       util::Rng& rng)
    : Module(name),
      config_(config),
      tokens_(name + ".tokens", config.vocab_size, config.dim, rng),
      positions_(name + ".positions", config.max_positions, config.dim, rng),
      segments_(name + ".segments", config.num_segments, config.dim, rng),
      ln_embed_(name + ".ln_embed", config.dim) {
  AddChild(&tokens_);
  AddChild(&positions_);
  AddChild(&segments_);
  AddChild(&ln_embed_);
  // Keep positional signal subordinate to lexical content (see config).
  la::Scale(positions_.table()->value, config.position_init_scale);
  for (size_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerLayer>(
        name + util::StrFormat(".layer%zu", i), config_, rng));
    AddChild(layers_.back().get());
  }
}

Var TransformerEncoder::Forward(ForwardContext& ctx, const std::vector<int>& ids,
                                const std::vector<int>& segment_ids,
                                Var* embed_out) {
  DIAL_CHECK_EQ(ids.size(), segment_ids.size());
  DIAL_CHECK_GT(ids.size(), 0u);
  DIAL_CHECK_LE(ids.size(), config_.max_positions);
  std::vector<int> pos_ids(ids.size());
  for (size_t i = 0; i < pos_ids.size(); ++i) pos_ids[i] = static_cast<int>(i);
  Var x = autograd::Add(
      autograd::Add(tokens_.Forward(ctx, ids), positions_.Forward(ctx, pos_ids)),
      segments_.Forward(ctx, segment_ids));
  x = ln_embed_.Forward(ctx, x);
  if (embed_out != nullptr) *embed_out = x;
  x = autograd::Dropout(x, config_.dropout, *ctx.rng, ctx.training);
  for (auto& layer : layers_) x = layer->Forward(ctx, x);
  return x;
}

}  // namespace dial::nn
