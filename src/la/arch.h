#ifndef DIAL_LA_ARCH_H_
#define DIAL_LA_ARCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Runtime CPU dispatch for the la/kernels hot paths. One binary carries
/// several instantiations of the kernel layer — a portable scalar build, an
/// AVX2 build, an AVX-512 build (x86), and a NEON build (aarch64) — and the
/// fastest one the running CPU supports is selected at startup behind the
/// `la::kernels` API. `-march=native` is no longer required for speed: a
/// plain Release build dispatches to the same wide-vector code paths.
///
/// The load-bearing property is **cross-tier bit-identity on the fp32
/// kernels**: every tier implements the exact accumulation orders documented
/// in kernels.h (16-lane interleaved row reductions with a fixed combine
/// tree, the fixed GEMM k-grouping, the 4-partial ADC scheme), every
/// per-arch translation unit compiles with `-ffp-contract=off`, and no tier
/// uses FMA. Forcing `scalar`, `avx2`, `avx512`, or `neon` therefore changes
/// wall-clock only, never results — tests/arch_test.cc asserts this for every
/// tier the running CPU can reach, and the repo-wide threaded ≡ inline
/// invariant is preserved per tier (threads still split output rows, never
/// reductions). The int8 kernels accumulate exactly in int32, so they too are
/// bit-identical across tiers.
///
/// Overrides: the `DIAL_FORCE_ARCH` environment variable (one of `scalar`,
/// `avx2`, `avx512`, `neon`, `native`) pins the tier at first kernel use, so
/// any tier can be exercised on any box — forcing *down* always works;
/// forcing a tier the CPU or build cannot run falls back to the best
/// supported tier with a warning on stderr. `SetTier` is the in-process
/// equivalent (benches and tests switch tiers per measurement).

namespace dial::la::arch {

/// Dispatch tiers, ordered cheapest-first within each ISA family. kNeon is
/// the aarch64 baseline build (NEON is mandatory on aarch64, so it exists
/// alongside kScalar to keep the tier axis explicit in benches).
enum class Tier {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// Stable lower-case name ("scalar", "avx2", "avx512", "neon").
const char* TierName(Tier tier);

/// Parses a tier name (or "native" = best detected). Returns false on
/// unknown text.
bool ParseTier(const std::string& text, Tier* out, bool* native);

/// Best tier this CPU *and* this binary support (a binary built without the
/// AVX-512 translation unit never reports kAvx512).
Tier DetectedTier();

/// True when `tier` is runnable here (compiled in + CPU supports it).
bool TierSupported(Tier tier);

/// Every runnable tier, cheapest first (always contains kScalar).
std::vector<Tier> SupportedTiers();

/// The tier kernels currently dispatch to.
Tier ActiveTier();

/// Switches dispatch to `tier`, clamping to the best supported tier at or
/// below the request (an unsupported request falls back toward scalar).
/// Returns the tier actually installed. Thread-safe; in-flight kernel calls
/// finish on the table they loaded.
Tier SetTier(Tier tier);

/// Re-applies the default policy: DIAL_FORCE_ARCH if set, else DetectedTier().
Tier ResetTierFromEnv();

/// Per-tier kernel entry points. Range kernels cover output rows
/// [i_begin, i_end) so the threading wrappers in kernels.cc can partition
/// rows without re-entering the dispatch table.
struct KernelTable {
  float (*dot)(const float* a, const float* b, size_t n);
  float (*squared_distance)(const float* a, const float* b, size_t n);
  void (*dot_batch)(const float* q, const float* base, size_t n, size_t d,
                    float* out);
  void (*squared_distance_batch)(const float* q, const float* base, size_t n,
                                 size_t d, float* out);
  void (*norms_squared)(const float* a, size_t n, size_t d, float* out);
  void (*squared_distance_from_dots)(float q_sq, const float* dots,
                                     const float* base_sq, size_t n,
                                     float* out);
  void (*gemm_nn_range)(size_t i_begin, size_t i_end, size_t n, size_t k,
                        const float* a, const float* b, float* out);
  void (*gemm_tn_range)(size_t i_begin, size_t i_end, size_t m, size_t n,
                        size_t k, const float* a, const float* b, float* out);
  void (*gemm_nt_range)(size_t i_begin, size_t i_end, size_t n, size_t k,
                        const float* a, const float* b, float* out);
  float (*adc_one)(const float* table, size_t ksub, const uint8_t* code,
                   size_t m);
  void (*adc_scan)(const float* table, size_t ksub, const uint8_t* codes,
                   size_t m, size_t n, float* out);
  void (*gemm_int8_nt_range)(size_t i_begin, size_t i_end, size_t n, size_t k,
                             const int8_t* a, const float* a_scales,
                             const int8_t* b, const float* b_scales,
                             const float* bias, float* out);
};

/// The table kernels.cc dispatches through (never null; initialized from
/// DIAL_FORCE_ARCH / detection on first use).
const KernelTable& Active();

/// Per-TU table accessors (null when that tier is not compiled into this
/// binary / not applicable to this target). Defined in kernels_arch_*.cc.
const KernelTable* ScalarKernelTable();
const KernelTable* Avx2KernelTable();
const KernelTable* Avx512KernelTable();
const KernelTable* NeonKernelTable();

/// Builds a KernelTable from one per-arch implementation namespace; used by
/// the kernels_arch_*.cc translation units only.
#define DIAL_ARCH_TABLE_INIT(ns)                                             \
  {                                                                          \
    &ns::Dot, &ns::SquaredDistance, &ns::DotBatch, &ns::SquaredDistanceBatch,\
        &ns::NormsSquared, &ns::SquaredDistanceFromDots, &ns::GemmNNRange,   \
        &ns::GemmTNRange, &ns::GemmNTRange, &ns::AdcOne, &ns::AdcScan,       \
        &ns::GemmInt8NTRange,                                                \
  }

}  // namespace dial::la::arch

#endif  // DIAL_LA_ARCH_H_
