// Public kernel entry points: thin threading + dispatch shims. The compute
// lives in kernels_arch.inc, instantiated once per CPU tier (see la/arch.h);
// this TU only partitions output rows across the pool and forwards to the
// active tier's table. The table is loaded once per entry call, so a
// concurrent SetTier never mixes tiers within one GEMM.
#include "la/kernels.h"

#include <algorithm>

#include "la/arch.h"
#include "util/thread_pool.h"

#if defined(__GNUC__) || defined(__clang__)
#define DIAL_RESTRICT __restrict__
#else
#define DIAL_RESTRICT
#endif

namespace dial::la::kernels {

namespace {
constexpr size_t kTransposeTile = 32;
}  // namespace

void GemmNN(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool) {
  if (m == 0 || n == 0 || k == 0) return;
  const arch::KernelTable& table = arch::Active();
  util::ParallelFor(pool, m, [=, &table](size_t begin, size_t end) {
    table.gemm_nn_range(begin, end, n, k, a, b, out);
  });
}

void GemmTN(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool) {
  if (m == 0 || n == 0 || k == 0) return;
  const arch::KernelTable& table = arch::Active();
  util::ParallelFor(pool, m, [=, &table](size_t begin, size_t end) {
    table.gemm_tn_range(begin, end, m, n, k, a, b, out);
  });
}

void GemmNT(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool) {
  if (m == 0 || n == 0 || k == 0) return;
  const arch::KernelTable& table = arch::Active();
  util::ParallelFor(pool, m, [=, &table](size_t begin, size_t end) {
    table.gemm_nt_range(begin, end, n, k, a, b, out);
  });
}

void TransposeBlocked(size_t rows, size_t cols, const float* DIAL_RESTRICT in,
                      float* DIAL_RESTRICT out) {
  for (size_t r0 = 0; r0 < rows; r0 += kTransposeTile) {
    const size_t r1 = std::min(rows, r0 + kTransposeTile);
    for (size_t c0 = 0; c0 < cols; c0 += kTransposeTile) {
      const size_t c1 = std::min(cols, c0 + kTransposeTile);
      for (size_t r = r0; r < r1; ++r) {
        const float* DIAL_RESTRICT irow = in + r * cols;
        for (size_t c = c0; c < c1; ++c) out[c * rows + r] = irow[c];
      }
    }
  }
}

float Dot(const float* a, const float* b, size_t n) {
  return arch::Active().dot(a, b, n);
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  return arch::Active().squared_distance(a, b, n);
}

void DotBatch(const float* q, const float* base, size_t n, size_t d,
              float* out) {
  arch::Active().dot_batch(q, base, n, d, out);
}

void SquaredDistanceBatch(const float* q, const float* base, size_t n,
                          size_t d, float* out) {
  arch::Active().squared_distance_batch(q, base, n, d, out);
}

void NormsSquared(const float* a, size_t n, size_t d, float* out) {
  arch::Active().norms_squared(a, n, d, out);
}

size_t ArgMin(const float* v, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

size_t ArgMax(const float* v, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

void SquaredDistanceFromDots(float q_sq, const float* dots,
                             const float* base_sq, size_t n, float* out) {
  arch::Active().squared_distance_from_dots(q_sq, dots, base_sq, n, out);
}

float AdcDistance(const float* table, size_t ksub, const uint8_t* code,
                  size_t m) {
  return arch::Active().adc_one(table, ksub, code, m);
}

void AdcDistanceScan(const float* table, size_t ksub, const uint8_t* codes,
                     size_t m, size_t n, float* out) {
  arch::Active().adc_scan(table, ksub, codes, m, n, out);
}

void GemmInt8NT(size_t m, size_t n, size_t k, const int8_t* a,
                const float* a_scales, const int8_t* b, const float* b_scales,
                const float* bias, float* out, util::ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  const arch::KernelTable& table = arch::Active();
  util::ParallelFor(pool, m, [=, &table](size_t begin, size_t end) {
    table.gemm_int8_nt_range(begin, end, n, k, a, a_scales, b, b_scales, bias,
                             out);
  });
}

}  // namespace dial::la::kernels
