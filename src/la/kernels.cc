#include "la/kernels.h"

#include <algorithm>

#include "util/thread_pool.h"

#if defined(__GNUC__) || defined(__clang__)
#define DIAL_RESTRICT __restrict__
#else
#define DIAL_RESTRICT
#endif

namespace dial::la::kernels {

namespace {

// Panel sizes. kBlockK rows of b (GemmNN/GemmTN) or kBlockJ rows of b
// (GemmNT) are streamed repeatedly while out rows stay register/L1-resident;
// at 64 rows a panel is 64*n (resp. 64*k) floats — L2-resident for every
// matrix shape in this codebase. These are compile-time constants on purpose:
// the k-grouping they induce is part of the deterministic accumulation order.
constexpr size_t kBlockK = 64;
constexpr size_t kBlockJ = 64;
constexpr size_t kTransposeTile = 32;

/// One row of out += a-row * b-panel rows [p0, p1). The 4-way p-unroll keeps
/// four FMA streams per j-vector and amortizes the out-row store; the scalar
/// remainder handles p1 - p0 % 4. This grouping is a fixed function of
/// (p0, p1), which is what makes the accumulation order deterministic.
inline void GemmRowKernel(const float* DIAL_RESTRICT avals, size_t astride,
                          size_t p0, size_t p1, size_t n,
                          const float* DIAL_RESTRICT b,
                          float* DIAL_RESTRICT orow) {
  size_t p = p0;
  for (; p + 4 <= p1; p += 4) {
    const float a0 = avals[(p - p0) * astride];
    const float a1 = avals[(p - p0 + 1) * astride];
    const float a2 = avals[(p - p0 + 2) * astride];
    const float a3 = avals[(p - p0 + 3) * astride];
    const float* DIAL_RESTRICT b0 = b + p * n;
    const float* DIAL_RESTRICT b1 = b0 + n;
    const float* DIAL_RESTRICT b2 = b1 + n;
    const float* DIAL_RESTRICT b3 = b2 + n;
    for (size_t j = 0; j < n; ++j) {
      orow[j] += (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
    }
  }
  for (; p < p1; ++p) {
    const float av = avals[(p - p0) * astride];
    const float* DIAL_RESTRICT brow = b + p * n;
    for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
  }
}

/// Two rows of out at once, sharing one pass over the b panel — halves the
/// b-load traffic vs two single-row calls. Per output element the
/// accumulation order is identical to GemmRowKernel, so how rows get paired
/// (and therefore how threads split the row range) never changes results.
inline void GemmRowPairKernel(const float* DIAL_RESTRICT avals0,
                              const float* DIAL_RESTRICT avals1, size_t astride,
                              size_t p0, size_t p1, size_t n,
                              const float* DIAL_RESTRICT b,
                              float* DIAL_RESTRICT orow0,
                              float* DIAL_RESTRICT orow1) {
  size_t p = p0;
  for (; p + 4 <= p1; p += 4) {
    const float a00 = avals0[(p - p0) * astride];
    const float a01 = avals0[(p - p0 + 1) * astride];
    const float a02 = avals0[(p - p0 + 2) * astride];
    const float a03 = avals0[(p - p0 + 3) * astride];
    const float a10 = avals1[(p - p0) * astride];
    const float a11 = avals1[(p - p0 + 1) * astride];
    const float a12 = avals1[(p - p0 + 2) * astride];
    const float a13 = avals1[(p - p0 + 3) * astride];
    const float* DIAL_RESTRICT b0 = b + p * n;
    const float* DIAL_RESTRICT b1 = b0 + n;
    const float* DIAL_RESTRICT b2 = b1 + n;
    const float* DIAL_RESTRICT b3 = b2 + n;
    for (size_t j = 0; j < n; ++j) {
      const float v0 = b0[j];
      const float v1 = b1[j];
      const float v2 = b2[j];
      const float v3 = b3[j];
      orow0[j] += (a00 * v0 + a01 * v1) + (a02 * v2 + a03 * v3);
      orow1[j] += (a10 * v0 + a11 * v1) + (a12 * v2 + a13 * v3);
    }
  }
  for (; p < p1; ++p) {
    const float av0 = avals0[(p - p0) * astride];
    const float av1 = avals1[(p - p0) * astride];
    const float* DIAL_RESTRICT brow = b + p * n;
    for (size_t j = 0; j < n; ++j) {
      orow0[j] += av0 * brow[j];
      orow1[j] += av1 * brow[j];
    }
  }
}

/// Four rows of out at once — the widest register-blocked shape that still
/// fits the SSE2 baseline's 16 vector registers without spilling (6- and
/// 8-row variants measure ~4x slower). Quarters the b-load traffic vs four
/// single-row calls; per-element accumulation order is identical to
/// GemmRowKernel.
inline void GemmRowQuadKernel(const float* DIAL_RESTRICT avals0,
                              const float* DIAL_RESTRICT avals1,
                              const float* DIAL_RESTRICT avals2,
                              const float* DIAL_RESTRICT avals3, size_t astride,
                              size_t p0, size_t p1, size_t n,
                              const float* DIAL_RESTRICT b,
                              float* DIAL_RESTRICT orow0,
                              float* DIAL_RESTRICT orow1,
                              float* DIAL_RESTRICT orow2,
                              float* DIAL_RESTRICT orow3) {
  size_t p = p0;
  for (; p + 4 <= p1; p += 4) {
    const size_t q = (p - p0) * astride;
    const float a00 = avals0[q], a01 = avals0[q + astride],
                a02 = avals0[q + 2 * astride], a03 = avals0[q + 3 * astride];
    const float a10 = avals1[q], a11 = avals1[q + astride],
                a12 = avals1[q + 2 * astride], a13 = avals1[q + 3 * astride];
    const float a20 = avals2[q], a21 = avals2[q + astride],
                a22 = avals2[q + 2 * astride], a23 = avals2[q + 3 * astride];
    const float a30 = avals3[q], a31 = avals3[q + astride],
                a32 = avals3[q + 2 * astride], a33 = avals3[q + 3 * astride];
    const float* DIAL_RESTRICT b0 = b + p * n;
    const float* DIAL_RESTRICT b1 = b0 + n;
    const float* DIAL_RESTRICT b2 = b1 + n;
    const float* DIAL_RESTRICT b3 = b2 + n;
    for (size_t j = 0; j < n; ++j) {
      const float v0 = b0[j];
      const float v1 = b1[j];
      const float v2 = b2[j];
      const float v3 = b3[j];
      orow0[j] += (a00 * v0 + a01 * v1) + (a02 * v2 + a03 * v3);
      orow1[j] += (a10 * v0 + a11 * v1) + (a12 * v2 + a13 * v3);
      orow2[j] += (a20 * v0 + a21 * v1) + (a22 * v2 + a23 * v3);
      orow3[j] += (a30 * v0 + a31 * v1) + (a32 * v2 + a33 * v3);
    }
  }
  for (; p < p1; ++p) {
    const size_t q = (p - p0) * astride;
    const float av0 = avals0[q];
    const float av1 = avals1[q];
    const float av2 = avals2[q];
    const float av3 = avals3[q];
    const float* DIAL_RESTRICT brow = b + p * n;
    for (size_t j = 0; j < n; ++j) {
      orow0[j] += av0 * brow[j];
      orow1[j] += av1 * brow[j];
      orow2[j] += av2 * brow[j];
      orow3[j] += av3 * brow[j];
    }
  }
}

/// Rows [i_begin, i_end): quads first, then a pair, then a single row. Every
/// kernel shares the same p-grouping, so the split (and therefore the thread
/// chunking) never changes any output element's accumulation order.
inline void GemmRowsBlocked(size_t i_begin, size_t i_end, size_t astride,
                            size_t row_stride, size_t p0, size_t p1, size_t n,
                            const float* a_base, const float* DIAL_RESTRICT b,
                            float* DIAL_RESTRICT out) {
  // a_base points at the (p0, i_begin) element; consecutive rows are
  // `row_stride` apart in a and the per-row p-stride is `astride`.
  size_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    const float* arow = a_base + (i - i_begin) * row_stride;
    GemmRowQuadKernel(arow, arow + row_stride, arow + 2 * row_stride,
                      arow + 3 * row_stride, astride, p0, p1, n, b,
                      out + i * n, out + (i + 1) * n, out + (i + 2) * n,
                      out + (i + 3) * n);
  }
  if (i + 2 <= i_end) {
    const float* arow = a_base + (i - i_begin) * row_stride;
    GemmRowPairKernel(arow, arow + row_stride, astride, p0, p1, n, b,
                      out + i * n, out + (i + 1) * n);
    i += 2;
  }
  if (i < i_end) {
    GemmRowKernel(a_base + (i - i_begin) * row_stride, astride, p0, p1, n, b,
                  out + i * n);
  }
}

/// out rows [i_begin, i_end) of out(m,n) += a(m,k) * b(k,n).
void GemmNNRange(size_t i_begin, size_t i_end, size_t n, size_t k,
                 const float* DIAL_RESTRICT a, const float* DIAL_RESTRICT b,
                 float* DIAL_RESTRICT out) {
  for (size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const size_t p1 = std::min(k, p0 + kBlockK);
    GemmRowsBlocked(i_begin, i_end, /*astride=*/1, /*row_stride=*/k, p0, p1, n,
                    a + i_begin * k + p0, b, out);
  }
}

/// out rows [i_begin, i_end) of out(m,n) += a(k,m)^T * b(k,n). Row i of the
/// output reads column i of `a` (stride m).
void GemmTNRange(size_t i_begin, size_t i_end, size_t m, size_t n, size_t k,
                 const float* DIAL_RESTRICT a, const float* DIAL_RESTRICT b,
                 float* DIAL_RESTRICT out) {
  for (size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const size_t p1 = std::min(k, p0 + kBlockK);
    // Column i of a = stride-m walk from a[p0 * m + i]; consecutive output
    // rows are adjacent columns (row_stride 1).
    GemmRowsBlocked(i_begin, i_end, /*astride=*/m, /*row_stride=*/1, p0, p1, n,
                    a + p0 * m + i_begin, b, out);
  }
}

/// out rows [i_begin, i_end) of out(m,n) += a(m,k) * b(n,k)^T: each output
/// element is a row-row dot product; the j-panel keeps kBlockJ rows of b hot
/// across consecutive rows of a.
void GemmNTRange(size_t i_begin, size_t i_end, size_t n, size_t k,
                 const float* DIAL_RESTRICT a, const float* DIAL_RESTRICT b,
                 float* DIAL_RESTRICT out) {
  for (size_t j0 = 0; j0 < n; j0 += kBlockJ) {
    const size_t j1 = std::min(n, j0 + kBlockJ);
    for (size_t i = i_begin; i < i_end; ++i) {
      const float* arow = a + i * k;
      float* DIAL_RESTRICT orow = out + i * n;
      for (size_t j = j0; j < j1; ++j) orow[j] += Dot(arow, b + j * k, k);
    }
  }
}

}  // namespace

void GemmNN(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool) {
  if (m == 0 || n == 0 || k == 0) return;
  util::ParallelFor(pool, m, [=](size_t begin, size_t end) {
    GemmNNRange(begin, end, n, k, a, b, out);
  });
}

void GemmTN(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool) {
  if (m == 0 || n == 0 || k == 0) return;
  util::ParallelFor(pool, m, [=](size_t begin, size_t end) {
    GemmTNRange(begin, end, m, n, k, a, b, out);
  });
}

void GemmNT(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool) {
  if (m == 0 || n == 0 || k == 0) return;
  util::ParallelFor(pool, m, [=](size_t begin, size_t end) {
    GemmNTRange(begin, end, n, k, a, b, out);
  });
}

void TransposeBlocked(size_t rows, size_t cols, const float* DIAL_RESTRICT in,
                      float* DIAL_RESTRICT out) {
  for (size_t r0 = 0; r0 < rows; r0 += kTransposeTile) {
    const size_t r1 = std::min(rows, r0 + kTransposeTile);
    for (size_t c0 = 0; c0 < cols; c0 += kTransposeTile) {
      const size_t c1 = std::min(cols, c0 + kTransposeTile);
      for (size_t r = r0; r < r1; ++r) {
        const float* DIAL_RESTRICT irow = in + r * cols;
        for (size_t c = c0; c < c1; ++c) out[c * rows + r] = irow[c];
      }
    }
  }
}

float Dot(const float* DIAL_RESTRICT a, const float* DIAL_RESTRICT b,
          size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float acc = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredDistance(const float* DIAL_RESTRICT a,
                      const float* DIAL_RESTRICT b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float acc = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void DotBatch(const float* q, const float* base, size_t n, size_t d,
              float* DIAL_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) out[i] = Dot(q, base + i * d, d);
}

void SquaredDistanceBatch(const float* q, const float* base, size_t n,
                          size_t d, float* DIAL_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) out[i] = SquaredDistance(q, base + i * d, d);
}

void NormsSquared(const float* a, size_t n, size_t d, float* DIAL_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    const float* row = a + i * d;
    out[i] = Dot(row, row, d);
  }
}

size_t ArgMin(const float* v, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

size_t ArgMax(const float* v, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

void SquaredDistanceFromDots(float q_sq, const float* DIAL_RESTRICT dots,
                             const float* DIAL_RESTRICT base_sq, size_t n,
                             float* DIAL_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::max(0.0f, q_sq + base_sq[i] - 2.0f * dots[i]);
  }
}

}  // namespace dial::la::kernels
