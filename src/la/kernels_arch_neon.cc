// NEON tier (aarch64 baseline). NEON is mandatory on aarch64, so this tier
// exists to keep the tier axis explicit in benches and forced-arch tests; the
// generic kernels_arch.inc code auto-vectorizes to NEON under the default
// aarch64 target flags (with -ffp-contract=off so no FMA contraction).
// Returns nullptr on non-aarch64 targets.
#include "la/arch.h"

#if defined(__aarch64__)

#define DIAL_ARCH_NS neon_impl
#include "la/kernels_arch.inc"
#undef DIAL_ARCH_NS

namespace dial::la::arch {

const KernelTable* NeonKernelTable() {
  static const KernelTable table = DIAL_ARCH_TABLE_INIT(neon_impl);
  return &table;
}

}  // namespace dial::la::arch

#else

namespace dial::la::arch {
const KernelTable* NeonKernelTable() { return nullptr; }
}  // namespace dial::la::arch

#endif
