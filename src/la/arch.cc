#include "la/arch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dial::la::arch {

namespace {

// CPU capability probe. On x86 __builtin_cpu_supports reads CPUID once per
// process (glibc caches); on aarch64 NEON is architecturally guaranteed.
bool CpuHasTier(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
    case Tier::kNeon:
      return false;
#elif defined(__aarch64__)
    case Tier::kAvx2:
    case Tier::kAvx512:
      return false;
    case Tier::kNeon:
      return true;
#else
    default:
      return false;
#endif
  }
  return false;
}

const KernelTable* TableFor(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return ScalarKernelTable();
    case Tier::kAvx2:
      return Avx2KernelTable();
    case Tier::kAvx512:
      return Avx512KernelTable();
    case Tier::kNeon:
      return NeonKernelTable();
  }
  return nullptr;
}

// Candidate order when clamping a request downward: try the request, then
// every cheaper tier in its family, ending at scalar (always present).
Tier NextBelow(Tier tier) {
  switch (tier) {
    case Tier::kAvx512:
      return Tier::kAvx2;
    case Tier::kAvx2:
    case Tier::kNeon:
    case Tier::kScalar:
      return Tier::kScalar;
  }
  return Tier::kScalar;
}

Tier ClampToSupported(Tier tier) {
  Tier t = tier;
  while (!TierSupported(t) && t != Tier::kScalar) t = NextBelow(t);
  return t;
}

struct ActiveState {
  std::atomic<const KernelTable*> table{nullptr};
  std::atomic<int> tier{static_cast<int>(Tier::kScalar)};
  std::once_flag init;
};

ActiveState& State() {
  static ActiveState state;
  return state;
}

Tier InstallTier(Tier tier) {
  const Tier actual = ClampToSupported(tier);
  ActiveState& s = State();
  // Publish the table first: a reader pairing a fresh tier with a stale
  // table would be harmless (both are valid), but keep the order anyway so
  // ActiveTier() never gets ahead of Active().
  s.table.store(TableFor(actual), std::memory_order_release);
  s.tier.store(static_cast<int>(actual), std::memory_order_release);
  return actual;
}

Tier DefaultPolicyTier() {
  const char* force = std::getenv("DIAL_FORCE_ARCH");
  if (force != nullptr && force[0] != '\0') {
    Tier tier;
    bool native = false;
    if (!ParseTier(force, &tier, &native)) {
      std::fprintf(stderr,
                   "dial: DIAL_FORCE_ARCH=%s not recognized "
                   "(scalar|avx2|avx512|neon|native); using detected tier\n",
                   force);
      return DetectedTier();
    }
    if (native) return DetectedTier();
    if (!TierSupported(tier)) {
      std::fprintf(stderr,
                   "dial: DIAL_FORCE_ARCH=%s unsupported on this CPU/build; "
                   "falling back to %s\n",
                   force, TierName(ClampToSupported(tier)));
    }
    return tier;  // InstallTier clamps.
  }
  return DetectedTier();
}

void EnsureInit() {
  ActiveState& s = State();
  std::call_once(s.init, [] { InstallTier(DefaultPolicyTier()); });
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
    case Tier::kNeon:
      return "neon";
  }
  return "scalar";
}

bool ParseTier(const std::string& text, Tier* out, bool* native) {
  *native = false;
  if (text == "native" || text == "best") {
    *native = true;
    *out = DetectedTier();
    return true;
  }
  if (text == "scalar") {
    *out = Tier::kScalar;
    return true;
  }
  if (text == "avx2") {
    *out = Tier::kAvx2;
    return true;
  }
  if (text == "avx512") {
    *out = Tier::kAvx512;
    return true;
  }
  if (text == "neon") {
    *out = Tier::kNeon;
    return true;
  }
  return false;
}

bool TierSupported(Tier tier) {
  return CpuHasTier(tier) && TableFor(tier) != nullptr;
}

Tier DetectedTier() {
  if (TierSupported(Tier::kAvx512)) return Tier::kAvx512;
  if (TierSupported(Tier::kAvx2)) return Tier::kAvx2;
  if (TierSupported(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
}

std::vector<Tier> SupportedTiers() {
  std::vector<Tier> tiers;
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512, Tier::kNeon}) {
    if (TierSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

Tier ActiveTier() {
  EnsureInit();
  return static_cast<Tier>(State().tier.load(std::memory_order_acquire));
}

Tier SetTier(Tier tier) {
  EnsureInit();
  return InstallTier(tier);
}

Tier ResetTierFromEnv() {
  EnsureInit();
  return InstallTier(DefaultPolicyTier());
}

const KernelTable& Active() {
  EnsureInit();
  return *State().table.load(std::memory_order_acquire);
}

}  // namespace dial::la::arch
