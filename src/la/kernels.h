#ifndef DIAL_LA_KERNELS_H_
#define DIAL_LA_KERNELS_H_

#include <cstddef>

/// \file
/// Raw-pointer compute kernels behind la::Matrix: cache-blocked GEMM in the
/// three transpose layouts autograd needs, a blocked transpose, and batched
/// row-distance kernels for the index/selector scan loops. Everything here is
/// branch-free in the inner loops, `restrict`-qualified, and unrolled so the
/// compiler can keep multiple FMA streams in flight.
///
/// Accumulation contract (all callers rely on this):
///  - Everything accumulates in float32. Row reductions (Dot,
///    SquaredDistance, NormsSquared) use four independent partial sums over
///    interleaved lanes, combined as (s0+s1)+(s2+s3), with a scalar tail for
///    n % 4 — the SAME routine backs the scalar and batch entry points, so a
///    batched scan is bit-identical to calling the scalar kernel per row.
///  - GEMM accumulates each output element over k in a fixed order: k-blocks
///    ascending, 4 rows of b combined per step. The order never depends on
///    the thread count (threads split output rows, never the k reduction),
///    so pooled GEMM is bit-identical to inline GEMM.
///  - Reductions ACROSS many rows (k-means inertia, k-means++ totals) are
///    the caller's job and should accumulate in double; per-row / per-pair
///    quantities stay float32.
///
/// Threading: the Gemm* entry points take an optional util::ThreadPool and
/// fan out over contiguous output-row blocks (deterministic partials as
/// above). Null pool, a single worker, or nested calls from a pool worker
/// all degrade to inline execution via util::ParallelFor.

namespace dial::util {
class ThreadPool;
}

namespace dial::la::kernels {

/// out(m,n) += a(m,k) * b(k,n). Row-major, densely packed.
void GemmNN(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool = nullptr);

/// out(m,n) += a(k,m)^T * b(k,n). `a` is stored (k,m) row-major.
void GemmTN(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool = nullptr);

/// out(m,n) += a(m,k) * b(n,k)^T. `b` is stored (n,k) row-major.
void GemmNT(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool = nullptr);

/// out(cols,rows) = in(rows,cols)^T, tiled so both sides stay cache-resident.
void TransposeBlocked(size_t rows, size_t cols, const float* in, float* out);

/// Dot product of two length-n rows (4 partial sums, see contract above).
float Dot(const float* a, const float* b, size_t n);

/// Squared L2 distance between two length-n rows.
float SquaredDistance(const float* a, const float* b, size_t n);

/// out[i] = Dot(q, base + i*d) for i in [0, n). Bit-identical to the scalar
/// kernel per row.
void DotBatch(const float* q, const float* base, size_t n, size_t d,
              float* out);

/// out[i] = SquaredDistance(q, base + i*d) for i in [0, n).
void SquaredDistanceBatch(const float* q, const float* base, size_t n,
                          size_t d, float* out);

/// out[i] = Dot(row_i, row_i) for each of the n rows of `a` (n x d).
void NormsSquared(const float* a, size_t n, size_t d, float* out);

/// Index of the smallest (resp. largest) value in v[0..n); first index wins
/// ties. The standard follow-up to a batch distance scan (nearest centroid,
/// farthest point); n must be > 0.
size_t ArgMin(const float* v, size_t n);
size_t ArgMax(const float* v, size_t n);

/// Precomputed-norms expansion |q - x|² = |q|² - 2 q·x + |x|², evaluated as
/// out[i] = max(0, (q_sq + base_sq[i]) - 2*dots[i]). `dots` holds q·x_i —
/// typically one scores row of a GEMM over the database block, which is how
/// matmul_search turns its tile GEMM into L2 distances. The clamp absorbs
/// the tiny negatives floating-point cancellation can produce. NOT
/// bit-identical to SquaredDistanceBatch — use it where GEMM throughput
/// beats exactness.
void SquaredDistanceFromDots(float q_sq, const float* dots,
                             const float* base_sq, size_t n, float* out);

}  // namespace dial::la::kernels

#endif  // DIAL_LA_KERNELS_H_
