#ifndef DIAL_LA_KERNELS_H_
#define DIAL_LA_KERNELS_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Raw-pointer compute kernels behind la::Matrix: cache-blocked GEMM in the
/// three transpose layouts autograd needs, a blocked transpose, batched
/// row-distance kernels for the index/selector scan loops, the PQ ADC scan,
/// and an int8 GEMM for quantized inference. Every entry point here
/// dispatches through la/arch.h to a per-CPU-tier instantiation (scalar /
/// AVX2 / AVX-512 / NEON) selected at runtime — see arch.h for the tier
/// policy and the DIAL_FORCE_ARCH override.
///
/// Accumulation contract (all callers AND all dispatch tiers rely on this):
///  - Everything accumulates in float32 with no FMA contraction. Row
///    reductions (Dot, SquaredDistance, NormsSquared) use SIXTEEN independent
///    partial sums over interleaved lanes (lane j sums elements i ≡ j mod
///    16), combined by the fixed tree ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))
///    + ..., with a sequential scalar tail for n % 16 — wide enough that a
///    512-bit register is one accumulator and every narrower tier keeps the
///    same per-lane chains, so all tiers are bit-identical. The SAME routine
///    backs the scalar and batch entry points, so a batched scan is
///    bit-identical to calling the scalar kernel per row.
///  - GEMM accumulates each output element over k in a fixed order: k-blocks
///    ascending, 4 rows of b combined per step. The order never depends on
///    the thread count (threads split output rows, never the k reduction) or
///    the dispatch tier (SIMD widens over output columns, never k), so
///    pooled GEMM is bit-identical to inline GEMM on every tier.
///  - ADC accumulates per code over 4 interleaved subspace partials combined
///    as (s0+s1)+(s2+s3) with a sequential tail for m % 4; the batched scan
///    replays that chain per code.
///  - int8 GEMM accumulates exactly in int32 (order-free), then dequantizes
///    per element as float(acc) * (a_scale * b_scale) + bias.
///  - Reductions ACROSS many rows (k-means inertia, k-means++ totals) are
///    the caller's job and should accumulate in double; per-row / per-pair
///    quantities stay float32.
///
/// Threading: the Gemm* entry points take an optional util::ThreadPool and
/// fan out over contiguous output-row blocks (deterministic partials as
/// above). Null pool, a single worker, or nested calls from a pool worker
/// all degrade to inline execution via util::ParallelFor.

namespace dial::util {
class ThreadPool;
}

namespace dial::la::kernels {

/// out(m,n) += a(m,k) * b(k,n). Row-major, densely packed.
void GemmNN(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool = nullptr);

/// out(m,n) += a(k,m)^T * b(k,n). `a` is stored (k,m) row-major.
void GemmTN(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool = nullptr);

/// out(m,n) += a(m,k) * b(n,k)^T. `b` is stored (n,k) row-major.
void GemmNT(size_t m, size_t n, size_t k, const float* a, const float* b,
            float* out, util::ThreadPool* pool = nullptr);

/// out(cols,rows) = in(rows,cols)^T, tiled so both sides stay cache-resident.
void TransposeBlocked(size_t rows, size_t cols, const float* in, float* out);

/// Dot product of two length-n rows (16 partial sums, see contract above).
float Dot(const float* a, const float* b, size_t n);

/// Squared L2 distance between two length-n rows.
float SquaredDistance(const float* a, const float* b, size_t n);

/// out[i] = Dot(q, base + i*d) for i in [0, n). Bit-identical to the scalar
/// kernel per row.
void DotBatch(const float* q, const float* base, size_t n, size_t d,
              float* out);

/// out[i] = SquaredDistance(q, base + i*d) for i in [0, n).
void SquaredDistanceBatch(const float* q, const float* base, size_t n,
                          size_t d, float* out);

/// out[i] = Dot(row_i, row_i) for each of the n rows of `a` (n x d).
void NormsSquared(const float* a, size_t n, size_t d, float* out);

/// Index of the smallest (resp. largest) value in v[0..n); first index wins
/// ties. The standard follow-up to a batch distance scan (nearest centroid,
/// farthest point); n must be > 0.
size_t ArgMin(const float* v, size_t n);
size_t ArgMax(const float* v, size_t n);

/// Precomputed-norms expansion |q - x|² = |q|² - 2 q·x + |x|², evaluated as
/// out[i] = max(0, (q_sq + base_sq[i]) - 2*dots[i]). `dots` holds q·x_i —
/// typically one scores row of a GEMM over the database block, which is how
/// matmul_search turns its tile GEMM into L2 distances. The clamp absorbs
/// the tiny negatives floating-point cancellation can produce. NOT
/// bit-identical to SquaredDistanceBatch — use it where GEMM throughput
/// beats exactness.
void SquaredDistanceFromDots(float q_sq, const float* dots,
                             const float* base_sq, size_t n, float* out);

/// PQ asymmetric-distance lookup: sum over the m subspaces of
/// table[sub * ksub + code[sub]], where `table` is a query's precomputed
/// (m x ksub) distance table. 4 interleaved subspace partials, see contract.
float AdcDistance(const float* table, size_t ksub, const uint8_t* code,
                  size_t m);

/// out[i] = AdcDistance(table, ksub, codes + i*m, m) for i in [0, n).
/// Bit-identical to the per-code kernel; SIMD tiers scan several codes per
/// step with one gather per subspace.
void AdcDistanceScan(const float* table, size_t ksub, const uint8_t* codes,
                     size_t m, size_t n, float* out);

/// Quantized GEMM, NT layout (both operands row-contiguous over k):
/// out(m,n) = dequant(a(m,k) * b(n,k)^T) [+ bias], where a and b hold int8
/// values with per-row symmetric scales (row i of a ≈ a[i,:] * a_scales[i]).
/// Accumulation is exact in int32, so results are bit-identical across
/// tiers and thread counts; `out` is OVERWRITTEN (not accumulated into).
/// `bias` (length n, added per output column) may be null.
void GemmInt8NT(size_t m, size_t n, size_t k, const int8_t* a,
                const float* a_scales, const int8_t* b, const float* b_scales,
                const float* bias, float* out,
                util::ThreadPool* pool = nullptr);

}  // namespace dial::la::kernels

#endif  // DIAL_LA_KERNELS_H_
