#include "la/quant.h"

#include <atomic>
#include <cmath>

namespace dial::la::quant {

namespace {

std::atomic<uint64_t> g_weight_epoch{1};

inline float RowMaxAbs(const float* row, size_t n) {
  float maxabs = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float a = std::fabs(row[i]);
    if (a > maxabs) maxabs = a;
  }
  return maxabs;
}

inline void QuantizeRow(const float* src, size_t n, float scale, int8_t* dst) {
  const float inv = 1.0f / scale;
  for (size_t i = 0; i < n; ++i) {
    // lrintf = round-to-nearest-even under the default rounding mode; the
    // clamp only matters for the maxabs element itself when rounding lands
    // on 128.
    long v = std::lrintf(src[i] * inv);
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    dst[i] = static_cast<int8_t>(v);
  }
}

}  // namespace

void QuantizeRows(const float* src, size_t rows, size_t cols,
                  QuantizedTensor* out) {
  out->rows = rows;
  out->cols = cols;
  out->values.resize(rows * cols);
  out->scales.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    const float* row = src + r * cols;
    const float maxabs = RowMaxAbs(row, cols);
    const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    out->scales[r] = scale;
    QuantizeRow(row, cols, scale, out->values.data() + r * cols);
  }
}

void QuantizeTransposed(const Matrix& w, QuantizedTensor* out) {
  const size_t in = w.rows();
  const size_t n = w.cols();
  out->rows = n;
  out->cols = in;
  out->values.resize(n * in);
  out->scales.resize(n);
  for (size_t j = 0; j < n; ++j) {
    float maxabs = 0.0f;
    for (size_t i = 0; i < in; ++i) {
      const float a = std::fabs(w.row(i)[j]);
      if (a > maxabs) maxabs = a;
    }
    const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    out->scales[j] = scale;
    const float inv = 1.0f / scale;
    int8_t* dst = out->values.data() + j * in;
    for (size_t i = 0; i < in; ++i) {
      long v = std::lrintf(w.row(i)[j] * inv);
      if (v > 127) v = 127;
      if (v < -127) v = -127;
      dst[i] = static_cast<int8_t>(v);
    }
  }
}

void DequantizeRow(const QuantizedTensor& q, size_t r, float* dst) {
  const float scale = q.scales[r];
  const int8_t* row = q.values.data() + r * q.cols;
  for (size_t c = 0; c < q.cols; ++c) {
    dst[c] = static_cast<float>(row[c]) * scale;
  }
}

uint64_t WeightEpoch() {
  return g_weight_epoch.load(std::memory_order_acquire);
}

void BumpWeightEpoch() {
  g_weight_epoch.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace dial::la::quant
