#include "la/matrix.h"

#include <cmath>

#include "la/kernels.h"

namespace dial::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    DIAL_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
  DebugCheckAlignment();
}

void Matrix::RandNormal(util::Rng& rng, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.Normal()) * stddev;
}

void Matrix::RandUniform(util::Rng& rng, float limit) {
  for (auto& v : data_) v = rng.UniformFloat(-limit, limit);
}

void MatMul(const Matrix& a, const Matrix& b, Matrix& out,
            util::ThreadPool* pool) {
  DIAL_CHECK_EQ(a.cols(), b.rows());
  out = Matrix(a.rows(), b.cols());
  kernels::GemmNN(a.rows(), b.cols(), a.cols(), a.data(), b.data(), out.data(),
                  pool);
}

void MatMulAcc(const Matrix& a, const Matrix& b, Matrix& out,
               util::ThreadPool* pool) {
  DIAL_CHECK_EQ(a.cols(), b.rows());
  DIAL_CHECK_EQ(out.rows(), a.rows());
  DIAL_CHECK_EQ(out.cols(), b.cols());
  kernels::GemmNN(a.rows(), b.cols(), a.cols(), a.data(), b.data(), out.data(),
                  pool);
}

void MatMulTransposeAAcc(const Matrix& a, const Matrix& b, Matrix& out,
                         util::ThreadPool* pool) {
  // out(m,n) += a(k,m)^T * b(k,n)
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(out.rows(), a.cols());
  DIAL_CHECK_EQ(out.cols(), b.cols());
  kernels::GemmTN(a.cols(), b.cols(), a.rows(), a.data(), b.data(), out.data(),
                  pool);
}

void MatMulTransposeBAcc(const Matrix& a, const Matrix& b, Matrix& out,
                         util::ThreadPool* pool) {
  // out(m,n) += a(m,k) * b(n,k)^T
  DIAL_CHECK_EQ(a.cols(), b.cols());
  DIAL_CHECK_EQ(out.rows(), a.rows());
  DIAL_CHECK_EQ(out.cols(), b.rows());
  kernels::GemmNT(a.rows(), b.rows(), a.cols(), a.data(), b.data(), out.data(),
                  pool);
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMul(a, b, out);
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  MatMulTransposeBAcc(a, b, out);
  return out;
}

void Add(const Matrix& a, const Matrix& b, Matrix& out) {
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(a.cols(), b.cols());
  out = Matrix(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] + b.data()[i];
}

void AddInPlace(Matrix& a, const Matrix& b) {
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

void Axpy(Matrix& a, float scale, const Matrix& b) {
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] += scale * b.data()[i];
}

void AddRowBroadcast(Matrix& a, const Matrix& bias) {
  DIAL_CHECK_EQ(bias.rows(), 1u);
  DIAL_CHECK_EQ(bias.cols(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    float* row = a.row(r);
    const float* b = bias.row(0);
    for (size_t c = 0; c < a.cols(); ++c) row[c] += b[c];
  }
}

void Hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(a.cols(), b.cols());
  out = Matrix(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
}

void Scale(Matrix& a, float s) {
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] *= s;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  kernels::TransposeBlocked(a.rows(), a.cols(), a.data(), out.data());
  return out;
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  return kernels::SquaredDistance(a, b, n);
}

float Dot(const float* a, const float* b, size_t n) {
  return kernels::Dot(a, b, n);
}

float Norm(const float* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

float FrobeniusNorm(const Matrix& a) {
  return Norm(a.data(), a.size());
}

void NormalizeRowsInPlace(Matrix& a) {
  for (size_t r = 0; r < a.rows(); ++r) {
    float* row = a.row(r);
    const float norm = Norm(row, a.cols());
    if (norm == 0.0f) continue;
    const float inv = 1.0f / norm;
    for (size_t c = 0; c < a.cols(); ++c) row[c] *= inv;
  }
}

bool AllFinite(const Matrix& a) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a.data()[i])) return false;
  }
  return true;
}

}  // namespace dial::la
