#include "la/matrix.h"

#include <cmath>

namespace dial::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    DIAL_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

void Matrix::RandNormal(util::Rng& rng, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.Normal()) * stddev;
}

void Matrix::RandUniform(util::Rng& rng, float limit) {
  for (auto& v : data_) v = rng.UniformFloat(-limit, limit);
}

namespace {

// Core kernel: out(m,n) += a(m,k) * b(k,n), ikj loop order so the innermost
// loop streams contiguously over b and out rows.
void GemmAcc(const Matrix& a, const Matrix& b, Matrix& out) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace

void MatMul(const Matrix& a, const Matrix& b, Matrix& out) {
  DIAL_CHECK_EQ(a.cols(), b.rows());
  out = Matrix(a.rows(), b.cols());
  GemmAcc(a, b, out);
}

void MatMulAcc(const Matrix& a, const Matrix& b, Matrix& out) {
  DIAL_CHECK_EQ(a.cols(), b.rows());
  DIAL_CHECK_EQ(out.rows(), a.rows());
  DIAL_CHECK_EQ(out.cols(), b.cols());
  GemmAcc(a, b, out);
}

void MatMulTransposeAAcc(const Matrix& a, const Matrix& b, Matrix& out) {
  // out(m,n) += a(k,m)^T * b(k,n)
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(out.rows(), a.cols());
  DIAL_CHECK_EQ(out.cols(), b.cols());
  const size_t k = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeBAcc(const Matrix& a, const Matrix& b, Matrix& out) {
  // out(m,n) += a(m,k) * b(n,k)^T — dot products of rows; good locality as-is.
  DIAL_CHECK_EQ(a.cols(), b.cols());
  DIAL_CHECK_EQ(out.rows(), a.rows());
  DIAL_CHECK_EQ(out.cols(), b.rows());
  const size_t m = a.rows();
  const size_t n = b.rows();
  const size_t k = a.cols();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (size_t j = 0; j < n; ++j) {
      orow[j] += Dot(arow, b.row(j), k);
    }
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMul(a, b, out);
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  MatMulTransposeBAcc(a, b, out);
  return out;
}

void Add(const Matrix& a, const Matrix& b, Matrix& out) {
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(a.cols(), b.cols());
  out = Matrix(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] + b.data()[i];
}

void AddInPlace(Matrix& a, const Matrix& b) {
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

void Axpy(Matrix& a, float scale, const Matrix& b) {
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] += scale * b.data()[i];
}

void AddRowBroadcast(Matrix& a, const Matrix& bias) {
  DIAL_CHECK_EQ(bias.rows(), 1u);
  DIAL_CHECK_EQ(bias.cols(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    float* row = a.row(r);
    const float* b = bias.row(0);
    for (size_t c = 0; c < a.cols(); ++c) row[c] += b[c];
  }
}

void Hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  DIAL_CHECK_EQ(a.rows(), b.rows());
  DIAL_CHECK_EQ(a.cols(), b.cols());
  out = Matrix(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
}

void Scale(Matrix& a, float s) {
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] *= s;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
  }
  return out;
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float Dot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float Norm(const float* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

float FrobeniusNorm(const Matrix& a) {
  return Norm(a.data(), a.size());
}

void NormalizeRowsInPlace(Matrix& a) {
  for (size_t r = 0; r < a.rows(); ++r) {
    float* row = a.row(r);
    const float norm = Norm(row, a.cols());
    if (norm == 0.0f) continue;
    const float inv = 1.0f / norm;
    for (size_t c = 0; c < a.cols(); ++c) row[c] *= inv;
  }
}

bool AllFinite(const Matrix& a) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a.data()[i])) return false;
  }
  return true;
}

}  // namespace dial::la
