// Portable scalar tier. Compiled WITHOUT extra -m flags (and pinned to the
// baseline -march on x86 in CMakeLists so a -march=native build of the rest
// of the repo cannot leak wide instructions into this TU) — it must run on
// any machine the binary reaches, and it is the bit-identity reference every
// other tier is tested against.
#include "la/arch.h"

#define DIAL_ARCH_NS scalar_impl
#include "la/kernels_arch.inc"
#undef DIAL_ARCH_NS

namespace dial::la::arch {

const KernelTable* ScalarKernelTable() {
  static const KernelTable table = DIAL_ARCH_TABLE_INIT(scalar_impl);
  return &table;
}

}  // namespace dial::la::arch
