#ifndef DIAL_LA_QUANT_H_
#define DIAL_LA_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.h"

/// \file
/// Per-row symmetric int8 quantization for the inference engine's linear
/// sublayers. A fp32 row maps to int8 by `scale = maxabs / 127` and
/// `q = round(v / scale)` clamped to ±127; kernels::GemmInt8NT multiplies
/// int8 against int8 with exact int32 accumulation and dequantizes per
/// element by the product of the two rows' scales. Weights are quantized
/// TRANSPOSED — a Linear weight (in, out) becomes an (out, in) QuantizedTensor
/// whose rows are output features — so both GEMM operands are row-contiguous
/// over k and every output feature carries its own scale.
///
/// Only `InferForward` uses this path (training stays fp32 on the Tape), and
/// it is opt-in behind AlConfig::inference_precision / dial_serve
/// --precision=int8, gated by an F1-parity test in the AL golden harness.
/// The quantization routines themselves are scalar and undispatched: they
/// run once per weight epoch (weights) or once per forward over m*k cheap
/// elements (activations), and keeping them out of the dispatch table makes
/// int8 results bit-identical across tiers for free (the int32 GEMM already
/// is — see la/kernels.h).
///
/// Weight staleness: quantized weights are cached (see
/// InferenceContext::QuantizedTransposed) keyed on the global weight epoch
/// below. Anything that rewrites parameter values — an optimizer step, a
/// checkpoint load, module (re)construction — must call BumpWeightEpoch();
/// caches then lazily requantize on next use.

namespace dial::la::quant {

/// int8 rows with one fp32 scale per row: row r of the original data is
/// approximately values[r*cols + c] * scales[r].
struct QuantizedTensor {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<int8_t> values;
  std::vector<float> scales;
};

/// Quantizes each length-`cols` row of `src` (row-major, rows x cols)
/// symmetrically to int8. An all-zero row gets scale 1.
void QuantizeRows(const float* src, size_t rows, size_t cols,
                  QuantizedTensor* out);

/// Quantizes the TRANSPOSE of `w`: out has w.cols() rows of length w.rows(),
/// one scale per original column. This is the weight-side layout GemmInt8NT
/// wants for x(m,in) * W(in,out).
void QuantizeTransposed(const Matrix& w, QuantizedTensor* out);

/// Dequantizes row `r` of `q` into `dst` (length q.cols) — test helper for
/// round-trip bounds, not a hot path.
void DequantizeRow(const QuantizedTensor& q, size_t r, float* dst);

/// Monotonic counter identifying the current generation of every parameter
/// value in the process. Bumped by optimizer steps, Module::Load, and
/// parameter construction; quantized-weight caches compare against it.
uint64_t WeightEpoch();
void BumpWeightEpoch();

}  // namespace dial::la::quant

#endif  // DIAL_LA_QUANT_H_
