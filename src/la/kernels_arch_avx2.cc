// AVX2 tier: the same kernels_arch.inc arithmetic compiled with -mavx2 (no
// FMA, -ffp-contract=off), which enables the hand-written AVX2 paths for the
// row reductions, the ADC gather scan, and the int8 GEMM, and lets the
// vectorizer widen the generic GEMM column loops. Returns nullptr when this
// TU is built for a target without AVX2 (e.g. aarch64), so dispatch simply
// never offers the tier.
#include "la/arch.h"

#if defined(__AVX2__)

#define DIAL_ARCH_NS avx2_impl
#include "la/kernels_arch.inc"
#undef DIAL_ARCH_NS

namespace dial::la::arch {

const KernelTable* Avx2KernelTable() {
  static const KernelTable table = DIAL_ARCH_TABLE_INIT(avx2_impl);
  return &table;
}

}  // namespace dial::la::arch

#else

namespace dial::la::arch {
const KernelTable* Avx2KernelTable() { return nullptr; }
}  // namespace dial::la::arch

#endif
