// AVX-512 tier (f/bw/dq/vl): single-zmm row reductions, wider autovec on the
// generic GEMM loops. Same arithmetic contract as every other tier — no FMA,
// -ffp-contract=off, fixed combine trees — so results match scalar bit for
// bit. Returns nullptr when the TU is built without AVX-512 support.
#include "la/arch.h"

#if defined(__AVX512F__)

#define DIAL_ARCH_NS avx512_impl
#include "la/kernels_arch.inc"
#undef DIAL_ARCH_NS

namespace dial::la::arch {

const KernelTable* Avx512KernelTable() {
  static const KernelTable table = DIAL_ARCH_TABLE_INIT(avx512_impl);
  return &table;
}

}  // namespace dial::la::arch

#else

namespace dial::la::arch {
const KernelTable* Avx512KernelTable() { return nullptr; }
}  // namespace dial::la::arch

#endif
