#ifndef DIAL_LA_MATRIX_H_
#define DIAL_LA_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

/// \file
/// Dense row-major float32 matrix plus the handful of BLAS-free kernels the
/// autograd layer is built on. Everything in the training stack (transformer,
/// committee, heads) reduces to these operations; the heavy lifting lives in
/// la/kernels.h (blocked GEMM, batched distances) and this header is the
/// shape-checked Matrix-level entry point.

namespace dial::util {
class ThreadPool;
}

namespace dial::la {

/// Minimal over-aligned allocator so Matrix storage starts on a cache-line
/// (and AVX-512-friendly) 64-byte boundary: kernel loads from row 0 are
/// aligned, and rows never straddle lines unnecessarily.
template <typename T, size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

constexpr size_t kMatrixAlignment = 64;

/// Matrix backing store: contiguous, 64-byte aligned.
using AlignedVector = std::vector<float, AlignedAllocator<float, kMatrixAlignment>>;

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {
    DebugCheckAlignment();
  }
  Matrix(size_t rows, size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    DebugCheckAlignment();
  }
  /// Builds from nested initializer lists: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  float& at(size_t r, size_t c) {
    DIAL_CHECK_LT(r, rows_);
    DIAL_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    DIAL_CHECK_LT(r, rows_);
    DIAL_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  /// Unchecked access for hot loops.
  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  /// Gaussian init with the given standard deviation.
  void RandNormal(util::Rng& rng, float stddev);
  /// Uniform init in [-limit, limit].
  void RandUniform(util::Rng& rng, float limit);

  const AlignedVector& storage() const { return data_; }
  AlignedVector& storage() { return data_; }

 private:
  /// Kernels assume 64-byte-aligned storage; verify in debug builds.
  void DebugCheckAlignment() const {
#ifndef NDEBUG
    DIAL_CHECK_EQ(reinterpret_cast<std::uintptr_t>(data_.data()) %
                      kMatrixAlignment,
                  0u)
        << "Matrix storage is not 64-byte aligned";
#endif
  }

  size_t rows_;
  size_t cols_;
  AlignedVector data_;
};

/// out = a * b. Shapes: (m,k) x (k,n) -> (m,n). `out` is overwritten and may
/// not alias the inputs. `pool` (optional) fans the GEMM out over output-row
/// blocks; results are bit-identical for every thread count (see kernels.h).
void MatMul(const Matrix& a, const Matrix& b, Matrix& out,
            util::ThreadPool* pool = nullptr);

/// out += a * b (accumulating variant used in backward passes).
void MatMulAcc(const Matrix& a, const Matrix& b, Matrix& out,
               util::ThreadPool* pool = nullptr);

/// out += a^T * b. Shapes: (k,m)^T x (k,n) -> (m,n).
void MatMulTransposeAAcc(const Matrix& a, const Matrix& b, Matrix& out,
                         util::ThreadPool* pool = nullptr);

/// out += a * b^T. Shapes: (m,k) x (n,k)^T -> (m,n).
void MatMulTransposeBAcc(const Matrix& a, const Matrix& b, Matrix& out,
                         util::ThreadPool* pool = nullptr);

/// Convenience non-accumulating wrappers.
Matrix MatMul(const Matrix& a, const Matrix& b);
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// out = a + b (same shape).
void Add(const Matrix& a, const Matrix& b, Matrix& out);
/// a += b
void AddInPlace(Matrix& a, const Matrix& b);
/// a += scale * b
void Axpy(Matrix& a, float scale, const Matrix& b);
/// Adds row-vector `bias` (1 x n) to every row of `a` (m x n).
void AddRowBroadcast(Matrix& a, const Matrix& bias);

/// Elementwise product out = a ⊙ b.
void Hadamard(const Matrix& a, const Matrix& b, Matrix& out);

/// Scales all entries in place.
void Scale(Matrix& a, float s);

/// Returns the transpose (cache-blocked).
Matrix Transpose(const Matrix& a);

/// Squared L2 distance between two equal-length rows.
float SquaredDistance(const float* a, const float* b, size_t n);
/// Dot product of two equal-length rows.
float Dot(const float* a, const float* b, size_t n);
/// L2 norm of a row.
float Norm(const float* a, size_t n);

/// Frobenius norm of the whole matrix.
float FrobeniusNorm(const Matrix& a);

/// Scales every row to unit L2 norm (zero rows stay zero). On normalized
/// rows, squared-L2 nearest neighbours coincide with cosine similarity —
/// the "scaled cosine" retrieval the paper mentions as an alternative
/// similarity for the blocker.
void NormalizeRowsInPlace(Matrix& a);

/// True if all entries are finite.
bool AllFinite(const Matrix& a);

}  // namespace dial::la

#endif  // DIAL_LA_MATRIX_H_
