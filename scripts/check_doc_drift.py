#!/usr/bin/env python3
"""Doc-drift gate: fail CI when the docs and the binaries disagree.

Two checks, both against files in the working tree plus the built
binaries' --help output:

1. Markdown links: every relative link target in README.md and docs/
   must exist (anchors and external URLs are skipped).
2. Flag drift: every flag a documented binary actually exposes must be
   mentioned somewhere in README.md or docs/, and every `--flag` the
   docs attribute to that binary must exist in its --help. Flags are
   parsed from util::FlagSet's usage format ("  --name  help text
   (default: ...)").

Usage: scripts/check_doc_drift.py [--build-dir build]
Exit 0 = no drift; 1 = drift (each item printed); 2 = cannot run
(missing binary) — CI treats 2 as failure too, so the gate cannot
silently skip.
"""

import argparse
import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Binaries whose flags the docs promise to describe, and the doc files
# whose `--flag` mentions are attributed to them. dial_cli hides its
# flags behind subcommands, so each subcommand is checked separately.
BINARIES = {
    "dial_serve": {"cmd": ["dial_serve", "--help"]},
    "dial_cli run": {"cmd": ["dial_cli", "run", "--help"]},
    "dial_cli datasets": {"cmd": ["dial_cli", "datasets", "--help"]},
    "dial_cli jedai": {"cmd": ["dial_cli", "jedai", "--help"]},
}

DOC_FILES = ["README.md"] + [
    os.path.join("docs", f)
    for f in sorted(os.listdir(os.path.join(REPO, "docs")))
    if f.endswith(".md")
]

FLAG_USAGE_RE = re.compile(r"^\s+--([A-Za-z0-9_-]+)\s")
FLAG_DOC_RE = re.compile(r"--([A-Za-z0-9][A-Za-z0-9_-]*)")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def read(path):
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        return f.read()


def check_links(errors):
    for doc in DOC_FILES:
        text = read(doc)
        # Strip fenced code blocks: example links in ``` blocks are not
        # navigation.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(REPO, os.path.dirname(doc), target_path))
            if not os.path.exists(resolved):
                errors.append(f"{doc}: broken link -> {target}")


def help_flags(build_dir, spec, errors):
    binary = os.path.join(build_dir, spec["cmd"][0])
    if not os.path.exists(binary):
        print(f"FATAL: missing binary {binary} (build tools first)")
        sys.exit(2)
    proc = subprocess.run([binary] + spec["cmd"][1:], capture_output=True,
                          text=True, timeout=60)
    flags = set()
    for line in (proc.stdout + proc.stderr).splitlines():
        m = FLAG_USAGE_RE.match(line)
        if m:
            flags.add(m.group(1))
    if not flags:
        errors.append(f"{' '.join(spec['cmd'])}: no flags parsed from --help "
                      "(usage format changed?)")
    return flags


def check_flags(build_dir, errors):
    docs_text = "\n".join(read(doc) for doc in DOC_FILES)
    documented = set(FLAG_DOC_RE.findall(docs_text))
    # Long-form GNU flags that appear in docs but belong to other tools
    # (cmake, compilers, ctest, gcovr) rather than dial binaries.
    foreign = {f for f in documented if f.startswith(("D", "coverage", "march",
                                                      "ffp", "m", "W"))}
    foreign |= {"build", "build-dir", "output-on-failure"}

    all_binary_flags = set()
    for name, spec in BINARIES.items():
        flags = help_flags(build_dir, spec, errors)
        all_binary_flags |= flags
        missing = sorted(f for f in flags if f not in documented)
        for f in missing:
            errors.append(
                f"{name}: flag --{f} is not mentioned in README.md or docs/")

    # Reverse direction: doc'd dial flags that no binary exposes. Bench
    # harness flags (json_out, reps, ...) are exempt via an allowlist of
    # prefixes the bench/common layer owns.
    bench_flags = {"json_out", "refresh_json_out", "datasets", "rounds",
                   "seed", "scale", "threads", "reps", "per_client",
                   "help", "self_test",
                   # bench_scale (docs/BENCHMARKS.md)
                   "n", "dim", "k", "queries", "backends", "shards"}
    for f in sorted(documented - all_binary_flags - foreign - bench_flags):
        errors.append(
            f"docs mention --{f} but no checked binary exposes it")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    args = parser.parse_args()

    errors = []
    check_links(errors)
    check_flags(args.build_dir, errors)
    if errors:
        print(f"doc drift: {len(errors)} problem(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"doc drift: clean ({len(DOC_FILES)} docs, "
          f"{len(BINARIES)} binaries checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
