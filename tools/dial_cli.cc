// dial — command-line driver for the library.
//
// Subcommands:
//   dial datasets [--scale=smoke]
//       Table-1 style statistics for every registered dataset (including
//       dirty_* variants on request via --datasets).
//   dial run [--dataset=...] [--blocking=dial] [--selector=uncertainty] ...
//       One full active-learning session with every knob exposed: blocking
//       strategy, selector, index backend, committee size/objective/negative
//       source, candidate sizing, and checkpointing (--checkpoint path;
//       --resume to continue a previous session).
//   dial jedai [--dataset=...] [--weighting=js] [--pruning=wep]
//       The classical JedAI-style pipelines (schema-agnostic meta-blocking
//       and schema-based q-gram join) with scheme selection.
//
// Everything the bench harnesses exercise is reachable from here, which is
// what makes the repo usable as a tool rather than only as a library.

#include <cstdio>
#include <cstring>
#include <memory>

#include "baselines/jedai.h"
#include "baselines/rules.h"
#include "core/checkpoint.h"
#include "core/experiment.h"
#include "data/record_pack.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/table_printer.h"

namespace {

int CmdDatasets(int argc, char** argv) {
  dial::util::FlagSet flags;
  std::string* scale_text = flags.AddString("scale", "smoke", "smoke|small|medium");
  std::string* datasets = flags.AddString(
      "datasets", "", "comma-separated names; default = all registered");
  int64_t* seed = flags.AddInt("seed", 1, "generator seed");
  std::string* pack = flags.AddString(
      "pack", "",
      "convert to record packs: with --pack_records=0, write each listed "
      "dataset's tables to <pack><name>.{r,s}.pack; with --pack_records=N, "
      "stream N synthetic records to <pack> instead (O(1) memory)");
  int64_t* pack_records = flags.AddInt(
      "pack_records", 0, "synthetic record count for --pack (0 = pack tables)");
  flags.Parse(argc, argv);
  const auto scale = dial::data::ParseScale(*scale_text);

  if (!pack->empty() && *pack_records > 0) {
    const dial::util::Status status = dial::data::WriteSyntheticPack(
        *pack, static_cast<size_t>(*pack_records), static_cast<uint64_t>(*seed));
    if (!status.ok()) {
      std::fprintf(stderr, "pack failed: %s\n", status.ToString().c_str());
      return 1;
    }
    dial::data::RecordPackReader reader;
    DIAL_CHECK_OK(reader.Open(*pack));
    std::printf("wrote %zu synthetic records to %s (%zu attrs)\n",
                reader.size(), pack->c_str(), reader.schema().size());
    return 0;
  }

  std::vector<std::string> names = datasets->empty()
                                       ? dial::data::AllDatasetNames()
                                       : dial::util::Split(*datasets, ",");
  dial::util::TablePrinter table(
      {"Dataset", "|R|", "|S|", "|dups|", "dup rate", "|Dtest|"});
  for (const std::string& name : names) {
    const auto bundle =
        dial::data::MakeDataset(name, scale, static_cast<uint64_t>(*seed));
    const auto stats = dial::data::ComputeStats(bundle);
    table.AddRow({stats.name, std::to_string(stats.r_size),
                  std::to_string(stats.s_size), std::to_string(stats.num_dups),
                  dial::util::StrFormat("%.1e", stats.dup_rate),
                  std::to_string(stats.test_size)});
    if (!pack->empty()) {
      const std::pair<const char*, const dial::data::Table*> sides[] = {
          {"r", &bundle.r_table}, {"s", &bundle.s_table}};
      for (const auto& [side, t] : sides) {
        const std::string path = *pack + name + "." + side + ".pack";
        const dial::util::Status status = dial::data::WriteTablePack(path, *t);
        if (!status.ok()) {
          std::fprintf(stderr, "pack failed: %s\n", status.ToString().c_str());
          return 1;
        }
        std::printf("packed %s -> %s\n", name.c_str(), path.c_str());
      }
    }
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdRun(int argc, char** argv) {
  dial::util::FlagSet flags;
  std::string* dataset = flags.AddString("dataset", "walmart_amazon", "dataset name");
  std::string* scale_text = flags.AddString("scale", "smoke", "smoke|small|medium");
  std::string* blocking = flags.AddString(
      "blocking", "dial", "dial|paired_fixed|paired_adapt|sentence_bert|rules");
  std::string* selector = flags.AddString(
      "selector", "uncertainty",
      "random|greedy|uncertainty|qbc|partition2|partition4|badge|coreset|bald|diverse");
  std::string* backend = flags.AddString(
      "backend", "flat", "flat|ivf|lsh|pq|ivfpq|sq|hnsw|matmul");
  std::string* objective =
      flags.AddString("objective", "contrastive", "contrastive|triplet|classification");
  std::string* negatives = flags.AddString("negatives", "random", "random|labeled");
  int64_t* rounds = flags.AddInt("rounds", 0, "AL rounds (0 = scale default)");
  int64_t* budget = flags.AddInt("budget", 0, "labels per round (0 = default)");
  int64_t* committee = flags.AddInt("committee", 0, "committee size N (0 = default)");
  int64_t* k = flags.AddInt("k", 0, "neighbours per probe (0 = default)");
  double* cand_mult = flags.AddDouble("cand-mult", 0.0, "|cand| = mult*|S| (0 = default)");
  int64_t* threads =
      flags.AddInt("threads", 0, "blocking-step worker threads (0 = inline)");
  bool* refresh = flags.AddBool(
      "refresh", true,
      "warm-start blocker indexes across rounds (off = rebuild every round)");
  int64_t* refresh_iters = flags.AddInt(
      "refresh-iters", 5,
      "Lloyd iteration cap on warm-started IVF/IVFPQ centroids (early-stops "
      "on convergence)");
  double* drift = flags.AddDouble(
      "drift-threshold", 2.0,
      "retrain quantizers when refresh quantization error exceeds this x "
      "the trained error (<=0 disables the check)");
  int64_t* seed = flags.AddInt("seed", 7, "experiment seed");
  std::string* checkpoint =
      flags.AddString("checkpoint", "", "write a checkpoint here after each round");
  bool* resume = flags.AddBool("resume", false, "restore --checkpoint before running");
  bool* inference = flags.AddBool(
      "inference", true,
      "tape-free batched inference engine (off = per-sequence Tape forwards; "
      "bit-identical results either way)");
  std::string* precision = flags.AddString(
      "precision", "fp32",
      "fp32|int8 inference numerics (int8 quantizes the engine's linear "
      "sublayers; not bit-identical, fences checkpoint resume)");
  flags.Parse(argc, argv);

  dial::core::ExperimentConfig exp_config;
  exp_config.scale = dial::data::ParseScale(*scale_text);
  // --threads also accelerates pretraining (cache misses only): the tape
  // GEMMs thread through this pool with bit-identical results, so the
  // on-disk model cache key is unaffected.
  std::unique_ptr<dial::util::ThreadPool> pretrain_pool;
  if (*threads > 0) {
    pretrain_pool =
        std::make_unique<dial::util::ThreadPool>(static_cast<size_t>(*threads));
    exp_config.pretrain.pool = pretrain_pool.get();
  }
  dial::core::Experiment exp = dial::core::PrepareExperiment(*dataset, exp_config);
  exp_config.pretrain.pool = nullptr;  // pool dies here; don't leave a trap
  pretrain_pool.reset();

  dial::core::AlConfig al =
      dial::core::DefaultAlConfig(exp_config.scale, static_cast<uint64_t>(*seed));
  al.blocking = *blocking == "rules"
                    ? dial::core::BlockingStrategy::kFixedExternal
                    : dial::core::ParseBlocking(*blocking);
  al.selector = dial::core::ParseSelector(*selector);
  al.index_backend = dial::core::ParseIndexBackend(*backend);
  al.blocker.objective = dial::core::ParseObjective(*objective);
  al.blocker.negatives = *negatives == "labeled"
                             ? dial::core::NegativeSource::kLabeled
                             : dial::core::NegativeSource::kRandom;
  if (*rounds > 0) al.rounds = static_cast<size_t>(*rounds);
  if (*budget > 0) al.budget_per_round = static_cast<size_t>(*budget);
  if (*committee > 0) al.blocker.committee_size = static_cast<size_t>(*committee);
  if (*k > 0) al.k_neighbors = static_cast<size_t>(*k);
  if (*cand_mult > 0) al.cand_multiplier = *cand_mult;
  if (*threads > 0) al.num_threads = static_cast<size_t>(*threads);
  al.index_refresh = *refresh;
  if (*refresh_iters > 0) al.refresh.warm_iterations = static_cast<size_t>(*refresh_iters);
  al.refresh.drift_threshold = *drift;
  al.inference_engine = *inference;
  al.inference_precision = *precision;

  dial::core::ActiveLearningLoop loop(&exp.bundle, &exp.vocab,
                                      exp.pretrained.get(), al);
  if (al.blocking == dial::core::BlockingStrategy::kFixedExternal) {
    loop.SetExternalCandidates(dial::baselines::RulesCandidates(exp.bundle));
  }
  if (!checkpoint->empty()) loop.SetCheckpointPath(*checkpoint);
  if (*resume) {
    DIAL_CHECK(!checkpoint->empty()) << "--resume requires --checkpoint";
    const dial::util::Status status = loop.RestoreCheckpoint(*checkpoint);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot resume: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("resumed from %s\n", checkpoint->c_str());
  }

  const dial::core::AlResult result = loop.Run();
  dial::util::TablePrinter table({"round", "|T|", "cand", "cand recall",
                                  "test F1", "all-pairs F1", "idx build ms",
                                  "warm"});
  for (const auto& r : result.rounds) {
    table.AddRow({std::to_string(r.round), std::to_string(r.labels_in_t),
                  std::to_string(r.cand_size),
                  dial::util::TablePrinter::Num(100 * r.cand_recall, 1),
                  dial::util::TablePrinter::Num(100 * r.test_prf.f1, 1),
                  dial::util::TablePrinter::Num(100 * r.allpairs_prf.f1, 1),
                  dial::util::TablePrinter::Num(1000 * r.t_index_build, 2),
                  std::to_string(r.index_warm_members)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nfinal all-pairs P/R/F1: %.1f / %.1f / %.1f | labels used: %zu | "
      "block+match: %.2fs\n",
      100 * result.final_allpairs.precision, 100 * result.final_allpairs.recall,
      100 * result.final_allpairs.f1, result.labels_used,
      result.block_match_seconds);
  return 0;
}

int CmdJedai(int argc, char** argv) {
  dial::util::FlagSet flags;
  std::string* dataset = flags.AddString("dataset", "walmart_amazon", "dataset name");
  std::string* scale_text = flags.AddString("scale", "smoke", "smoke|small|medium");
  std::string* weighting =
      flags.AddString("weighting", "js", "cbs|js|ecbs|arcs|chisquare");
  std::string* pruning = flags.AddString("pruning", "wep", "wep|cep|wnp|cnp");
  double* filter = flags.AddDouble("filter", 1.0, "block-filter ratio (1 = off)");
  int64_t* seed = flags.AddInt("seed", 1, "generator seed");
  flags.Parse(argc, argv);

  const auto bundle = dial::data::MakeDataset(
      *dataset, dial::data::ParseScale(*scale_text), static_cast<uint64_t>(*seed));

  dial::baselines::JedaiAgnosticConfig agnostic;
  agnostic.weighting = dial::baselines::ParseEdgeWeighting(*weighting);
  agnostic.pruning = dial::baselines::ParsePruningScheme(*pruning);
  agnostic.block_filter_ratio = *filter;
  const auto a = dial::baselines::RunJedaiSchemaAgnostic(bundle, agnostic);
  const auto b = dial::baselines::RunJedaiSchemaBased(bundle, {});

  dial::util::TablePrinter table(
      {"workflow", "blocks", "comparisons", "threshold", "P", "R", "F1", "sec"});
  for (const auto& [name, result] :
       {std::pair{std::string("schema-agnostic (") + *weighting + "+" + *pruning + ")",
                  a},
        std::pair{std::string("schema-based (qgram)"), b}}) {
    const auto prf = dial::core::EvaluatePredictedPairs(bundle, result.predicted);
    table.AddRow({name, std::to_string(result.num_blocks),
                  std::to_string(result.comparisons),
                  dial::util::TablePrinter::Num(result.best_threshold, 2),
                  dial::util::TablePrinter::Num(100 * prf.precision, 1),
                  dial::util::TablePrinter::Num(100 * prf.recall, 1),
                  dial::util::TablePrinter::Num(100 * prf.f1, 1),
                  dial::util::TablePrinter::Num(result.seconds, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

void PrintUsage() {
  std::printf(
      "dial — deep indexed active learning for entity resolution\n\n"
      "usage: dial <command> [--flags]\n\n"
      "commands:\n"
      "  datasets   Table-1 style statistics for the registered datasets\n"
      "  run        one active-learning session (all strategies/selectors)\n"
      "  jedai      classical meta-blocking pipelines\n\n"
      "run `dial <command> --help` for the command's flags.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "datasets") == 0) return CmdDatasets(argc - 1, argv + 1);
  if (std::strcmp(cmd, "run") == 0) return CmdRun(argc - 1, argv + 1);
  if (std::strcmp(cmd, "jedai") == 0) return CmdJedai(argc - 1, argv + 1);
  if (std::strcmp(cmd, "--help") == 0 || std::strcmp(cmd, "help") == 0) {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", cmd);
  PrintUsage();
  return 1;
}
