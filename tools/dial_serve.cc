// dial_serve — online matching service over a unix-domain socket.
//
// Loads (or trains and saves) a ServingBundle, then answers newline-
// delimited JSON requests with cross-request dynamic batching: concurrent
// match/embed requests are packed into one batched engine forward, so the
// linear sublayers run as a single GEMM across requests. See
// src/serve/server.h for the protocol.
//
// Typical session:
//   dial_serve --dataset=walmart_amazon --scale=smoke
//       --bundle=/tmp/wa.bundle --socket=/tmp/dial.sock
//   # elsewhere:
//   printf '{"op":"match","id":"1","r":3,"s":7}\n' | nc -U /tmp/dial.sock
//
// --self_test starts the server, drives a client session against it
// (match/topk/embed/upsert/retire/health/deadline-expiry/stats/shutdown),
// then re-serves and exercises the SIGTERM drain path, and exits 0 on
// success — the CI smoke for the binary.
//
// SIGTERM/SIGINT stop the server cleanly: queued requests drain, every
// accepted request gets its response, and the socket file is removed.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

using dial::serve::JsonValue;

/// Self-pipe carrying shutdown signals out of async-signal context: the
/// handler does the one thing that is safe (write a byte); a watcher thread
/// turns the byte into Server::RequestShutdown(), where mutexes are legal.
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int /*signum*/) {
  const char byte = 1;
  // A full pipe just means a shutdown is already pending; ignore the result.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Installs SIGTERM/SIGINT -> self-pipe and returns the watcher thread that
/// forwards the first signal to RequestShutdown. Join after closing the
/// pipe's write end (which unblocks the watcher on signal-free shutdowns).
std::thread WatchShutdownSignals(dial::serve::Server& server) {
  DIAL_CHECK(::pipe(g_signal_pipe) == 0) << std::strerror(errno);
  struct sigaction sa{};
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  return std::thread([&server] {
    char byte;
    if (dial::serve::ReadRetry(g_signal_pipe[0], &byte, 1) > 0) {
      server.RequestShutdown();
    }
  });
}

void JoinShutdownWatcher(std::thread& watcher) {
  ::close(g_signal_pipe[1]);  // EOF unblocks the watcher if no signal came
  watcher.join();
  ::close(g_signal_pipe[0]);
  g_signal_pipe[0] = g_signal_pipe[1] = -1;
}

/// Minimal blocking client for --self_test.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DIAL_CHECK(fd_ >= 0) << "socket(): " << std::strerror(errno);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    DIAL_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
        << "connect(" << socket_path << "): " << std::strerror(errno);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  JsonValue Call(const std::string& request) {
    std::string line = request;
    line.push_back('\n');
    // EINTR-safe request write + response read (same discipline as the
    // server side — a stray signal must not desync the framing).
    DIAL_CHECK(dial::serve::SendAll(fd_, line.data(), line.size()))
        << "server closed the connection";
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = dial::serve::ReadRetry(fd_, chunk, sizeof(chunk));
      DIAL_CHECK(n > 0) << "server closed the connection";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const size_t newline = buffer_.find('\n');
    const std::string response = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    auto parsed = dial::serve::ParseJson(response);
    DIAL_CHECK(parsed.ok()) << parsed.status().ToString() << ": " << response;
    return std::move(parsed).value();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

int SelfTest(dial::serve::ServingBundle& bundle, const std::string& socket_path,
             dial::serve::ServerOptions options) {
  dial::serve::Server server(&bundle, options);
  DIAL_CHECK_OK(server.Start());
  Client client(socket_path);

  JsonValue match = client.Call(R"({"op":"match","id":"m1","r":0,"s":0})");
  DIAL_CHECK(match.GetString("status", "") == "ok") << match.Dump();
  DIAL_CHECK(match.Get("prob") != nullptr) << match.Dump();

  JsonValue text_match = client.Call(
      R"({"op":"match","id":"m2","r_text":"acme phone 32gb","s_text":"acme phone 32 gb"})");
  DIAL_CHECK(text_match.GetString("status", "") == "ok") << text_match.Dump();

  JsonValue topk = client.Call(R"({"op":"topk","id":"t1","text":"acme phone","k":3})");
  DIAL_CHECK(topk.GetString("status", "") == "ok") << topk.Dump();
  DIAL_CHECK(topk.Get("neighbors") != nullptr) << topk.Dump();

  JsonValue embed = client.Call(R"({"op":"embed","id":"e1","text":"acme phone"})");
  DIAL_CHECK(embed.GetString("status", "") == "ok") << embed.Dump();
  DIAL_CHECK(embed.Get("embedding") != nullptr &&
             !embed.Get("embedding")->items().empty())
      << embed.Dump();

  JsonValue bad = client.Call(R"({"op":"match","id":"b1","r":99999999,"s":0})");
  DIAL_CHECK(bad.GetString("status", "") == "error") << bad.Dump();

  // Incremental lifecycle: upsert record 0 in place, retire record 1, and
  // confirm the retired record stops surfacing in topk while by-id matching
  // keeps working.
  JsonValue upsert = client.Call(
      R"({"op":"upsert","id":"u1","r":0,"text":"acme phone 32gb refurbished"})");
  DIAL_CHECK(upsert.GetString("status", "") == "ok") << upsert.Dump();
  DIAL_CHECK(upsert.Get("live") != nullptr) << upsert.Dump();

  JsonValue retire = client.Call(R"({"op":"retire","id":"x1","r":1})");
  DIAL_CHECK(retire.GetString("status", "") == "ok") << retire.Dump();
  JsonValue retire_again = client.Call(R"({"op":"retire","id":"x2","r":1})");
  DIAL_CHECK(retire_again.GetString("status", "") == "error") << retire_again.Dump();

  JsonValue topk_after =
      client.Call(R"({"op":"topk","id":"t2","text":"acme phone","k":5})");
  DIAL_CHECK(topk_after.GetString("status", "") == "ok") << topk_after.Dump();
  for (const JsonValue& hit : topk_after.Get("neighbors")->items()) {
    DIAL_CHECK(hit.GetNumber("r", -1) != 1) << "retired record served: "
                                            << topk_after.Dump();
  }
  JsonValue match_after = client.Call(R"({"op":"match","id":"m3","r":1,"s":0})");
  DIAL_CHECK(match_after.GetString("status", "") == "ok") << match_after.Dump();

  // Health: answered inline, reports worker liveness and the bundle's
  // fingerprint.
  JsonValue health = client.Call(R"({"op":"health","id":"h1"})");
  DIAL_CHECK(health.GetString("status", "") == "ok") << health.Dump();
  DIAL_CHECK(health.Get("healthy") != nullptr &&
             health.Get("healthy")->AsBool())
      << health.Dump();
  DIAL_CHECK(health.GetNumber("workers", 0) >= 1) << health.Dump();
  DIAL_CHECK(health.GetNumber("stalled_workers", -1) == 0) << health.Dump();
  DIAL_CHECK(!health.GetString("bundle_fingerprint", "").empty())
      << health.Dump();

  // Deadline expiry: deadline_ms 0 expires at enqueue time, so the claim
  // check (now >= deadline) sheds it deterministically.
  JsonValue expired = client.Call(
      R"({"op":"match","id":"d1","r":0,"s":0,"deadline_ms":0})");
  DIAL_CHECK(expired.GetString("status", "") == "deadline_exceeded")
      << expired.Dump();

  JsonValue stats = client.Call(R"({"op":"stats","id":"s1"})");
  DIAL_CHECK(stats.GetNumber("requests_executed", 0) >= 9) << stats.Dump();
  DIAL_CHECK(stats.GetNumber("deadline_expired", 0) >= 1) << stats.Dump();

  JsonValue ack = client.Call(R"({"op":"shutdown","id":"q1"})");
  DIAL_CHECK(ack.GetString("status", "") == "ok") << ack.Dump();
  server.WaitForShutdown();
  server.Stop();

  // Phase 2: fresh server on the same socket, stopped via SIGTERM — the
  // production shutdown path (self-pipe -> watcher -> drain -> clean stop).
  {
    dial::serve::Server term_server(&bundle, options);
    DIAL_CHECK_OK(term_server.Start());
    std::thread watcher = WatchShutdownSignals(term_server);
    Client term_client(socket_path);
    JsonValue m = term_client.Call(R"({"op":"match","id":"tm1","r":0,"s":0})");
    DIAL_CHECK(m.GetString("status", "") == "ok") << m.Dump();
    ::raise(SIGTERM);
    term_server.WaitForShutdown();
    term_server.Stop();
    JoinShutdownWatcher(watcher);
    DIAL_CHECK(term_server.scheduler_stats().requests_executed >= 1);
    // Clean stop removes the socket file.
    DIAL_CHECK(::access(socket_path.c_str(), F_OK) != 0)
        << "socket file survived shutdown";
  }

  std::printf("self_test ok: %s\n", stats.Dump().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dial::util::FlagSet flags;
  std::string* dataset = flags.AddString("dataset", "walmart_amazon", "dataset name");
  std::string* scale_text = flags.AddString("scale", "smoke", "smoke|small|medium");
  int64_t* data_seed = flags.AddInt("data_seed", 1, "dataset generator seed");
  int64_t* al_seed = flags.AddInt("al_seed", 7, "active-learning seed");
  std::string* bundle_path = flags.AddString(
      "bundle", "", "bundle file: load if present, else train and save here");
  std::string* socket_path =
      flags.AddString("socket", "/tmp/dial_serve.sock", "unix socket path");
  std::string* backend_text = flags.AddString("backend", "flat", "index backend");
  int64_t* k_neighbors = flags.AddInt("k", 3, "IBC neighbours per member probe");
  int64_t* workers = flags.AddInt("workers", 2, "scheduler worker threads");
  int64_t* max_batch = flags.AddInt("max_batch", 32, "max requests per fused batch");
  int64_t* max_delay_us =
      flags.AddInt("max_delay_us", 2000, "deadline before a partial batch flushes");
  int64_t* ring = flags.AddInt("ring", 1024, "request ring capacity (overload bound)");
  int64_t* deadline_ms = flags.AddInt(
      "deadline_ms", -1,
      "default per-request deadline in ms; queued requests older than this "
      "are shed with deadline_exceeded (-1 = none; a request's own "
      "deadline_ms overrides)");
  int64_t* stall_ms = flags.AddInt(
      "stall_ms", 30000,
      "report a worker as stalled in health/stats after this many ms inside "
      "one batch");
  bool* self_test = flags.AddBool(
      "self_test", false, "serve, run a scripted client session, exit (CI smoke)");
  std::string* precision_text = flags.AddString(
      "precision", "fp32",
      "fp32|int8 worker inference numerics (int8 quantizes linear sublayers; "
      "match scores are no longer bit-identical to fp32 scoring)");
  flags.Parse(argc, argv);

  dial::autograd::Precision precision;
  if (!dial::autograd::ParsePrecision(*precision_text, &precision)) {
    std::fprintf(stderr, "unknown --precision '%s' (fp32|int8)\n",
                 precision_text->c_str());
    return 1;
  }

  dial::serve::ServingOptions options;
  options.dataset = *dataset;
  options.scale = dial::data::ParseScale(*scale_text);
  options.data_seed = static_cast<uint64_t>(*data_seed);
  options.al_seed = static_cast<uint64_t>(*al_seed);
  options.backend = dial::core::ParseIndexBackend(*backend_text);
  options.k_neighbors = static_cast<size_t>(*k_neighbors);

  std::unique_ptr<dial::serve::ServingBundle> bundle;
  if (!bundle_path->empty()) {
    if (FILE* f = std::fopen(bundle_path->c_str(), "rb"); f != nullptr) {
      std::fclose(f);
      auto loaded = dial::serve::ServingBundle::Load(*bundle_path);
      DIAL_CHECK_OK(loaded.status());
      bundle = std::move(loaded).value();
      std::printf("loaded bundle %s (%s/%s, %zu R records)\n", bundle_path->c_str(),
                  bundle->options().dataset.c_str(),
                  dial::data::ScaleName(bundle->options().scale).c_str(),
                  bundle->num_r_records());
    }
  }
  if (bundle == nullptr) {
    std::printf("training bundle for %s/%s...\n", dataset->c_str(), scale_text->c_str());
    bundle = dial::serve::ServingBundle::Train(options);
    if (!bundle_path->empty()) {
      DIAL_CHECK_OK(bundle->Save(*bundle_path));
      std::printf("saved bundle to %s\n", bundle_path->c_str());
    }
  }

  dial::serve::ServerOptions server_options;
  server_options.socket_path = *socket_path;
  server_options.scheduler.num_workers = static_cast<size_t>(*workers);
  server_options.scheduler.max_batch = static_cast<size_t>(*max_batch);
  server_options.scheduler.max_delay_us = *max_delay_us;
  server_options.scheduler.ring_capacity = static_cast<size_t>(*ring);
  server_options.scheduler.default_deadline_ms = *deadline_ms;
  server_options.scheduler.stall_timeout_ms = *stall_ms;
  server_options.precision = precision;

  if (*self_test) {
    return SelfTest(*bundle, *socket_path, std::move(server_options));
  }

  dial::serve::Server server(bundle.get(), std::move(server_options));
  DIAL_CHECK_OK(server.Start());
  std::thread signal_watcher = WatchShutdownSignals(server);
  std::printf("serving %s on %s (%lld workers, max_batch %lld, deadline %lld us)\n",
              bundle->options().dataset.c_str(), socket_path->c_str(),
              static_cast<long long>(*workers), static_cast<long long>(*max_batch),
              static_cast<long long>(*max_delay_us));
  server.WaitForShutdown();
  server.Stop();
  JoinShutdownWatcher(signal_watcher);
  const dial::serve::SchedulerStats stats = server.scheduler_stats();
  std::printf("shutdown: %llu requests in %llu batches (mean %.2f, max %zu)\n",
              static_cast<unsigned long long>(stats.requests_executed),
              static_cast<unsigned long long>(stats.batches), stats.mean_batch_size(),
              stats.max_batch_observed);
  return 0;
}
